// Package stats implements the statistical machinery the paper relies on:
// descriptive statistics (mean, CV, quantiles), the hypothesis tests used
// in §4 (Welch's t-test, Levene's test, D'Agostino–Pearson and
// Anderson–Darling normality tests), Spearman's rank correlation, empirical
// CDFs, and the ML evaluation metrics of §6 (MAE, RMSE, weighted-average
// F1, per-class recall).
package stats

import "math"

// RegIncBeta computes the regularized incomplete beta function I_x(a, b)
// via the continued-fraction expansion (Numerical Recipes style). It is
// the backbone of the Student's t and F distribution CDFs.
func RegIncBeta(a, b, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	lbeta, _ := math.Lgamma(a + b)
	la, _ := math.Lgamma(a)
	lb, _ := math.Lgamma(b)
	front := math.Exp(lbeta - la - lb + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

// betaCF evaluates the continued fraction for the incomplete beta function.
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		m2 := float64(2 * m)
		aa := float64(m) * (b - float64(m)) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + float64(m)) * (qab + float64(m)) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// RegIncGammaLower computes the regularized lower incomplete gamma
// function P(a, x), used for the chi-squared CDF.
func RegIncGammaLower(a, x float64) float64 {
	switch {
	case x < 0 || a <= 0:
		return math.NaN()
	case x == 0:
		return 0
	}
	if x < a+1 {
		// Series representation converges quickly here.
		ap := a
		sum := 1 / a
		del := sum
		for n := 0; n < 500; n++ {
			ap++
			del *= x / ap
			sum += del
			if math.Abs(del) < math.Abs(sum)*1e-15 {
				break
			}
		}
		lg, _ := math.Lgamma(a)
		return sum * math.Exp(-x+a*math.Log(x)-lg)
	}
	// Continued fraction for Q(a, x), then P = 1 - Q.
	const fpmin = 1e-300
	b := x + 1 - a
	c := 1 / fpmin
	d := 1 / b
	h := d
	for i := 1; i <= 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = b + an/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-15 {
			break
		}
	}
	lg, _ := math.Lgamma(a)
	q := math.Exp(-x+a*math.Log(x)-lg) * h
	return 1 - q
}

// StudentTSF returns the two-sided survival probability P(|T_df| >= |t|)
// for a Student's t variable with df degrees of freedom.
func StudentTSF(t, df float64) float64 {
	if df <= 0 {
		return math.NaN()
	}
	x := df / (df + t*t)
	return RegIncBeta(df/2, 0.5, x)
}

// FSF returns the upper-tail probability P(F >= f) for an F distribution
// with (d1, d2) degrees of freedom.
func FSF(f, d1, d2 float64) float64 {
	if f <= 0 {
		return 1
	}
	x := d2 / (d2 + d1*f)
	return RegIncBeta(d2/2, d1/2, x)
}

// ChiSquareSF returns the upper-tail probability P(X >= x) for a
// chi-squared distribution with k degrees of freedom.
func ChiSquareSF(x, k float64) float64 {
	if x <= 0 {
		return 1
	}
	return 1 - RegIncGammaLower(k/2, x/2)
}

// NormalCDF is the standard normal cumulative distribution function.
func NormalCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}
