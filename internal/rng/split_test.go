package rng

import "testing"

// The deterministic parallel paths (sim shard pipeline, forest/gbdt
// training) rely on three properties of the split API, pinned here:
// SplitN is exactly n serial Splits, SplitLabeled never advances the
// parent, and State/Restore round-trips continue the identical stream
// across splits.

func TestSplitNMatchesRepeatedSplit(t *testing.T) {
	a := New(42)
	b := New(42)
	got := a.SplitN(8)
	for i := 0; i < 8; i++ {
		want := b.Split()
		for j := 0; j < 16; j++ {
			if g, w := got[i].Uint64(), want.Uint64(); g != w {
				t.Fatalf("child %d draw %d: SplitN %d != Split %d", i, j, g, w)
			}
		}
	}
	// Both parents must end in the same state too.
	if a.Uint64() != b.Uint64() {
		t.Fatal("SplitN consumed a different number of parent draws than 8 Splits")
	}
}

func TestSplitLabeledDoesNotAdvanceParent(t *testing.T) {
	a := New(7)
	b := New(7)
	for _, label := range []string{"x", "kinematics", "area:Airport", ""} {
		_ = a.SplitLabeled(label)
	}
	for i := 0; i < 16; i++ {
		if g, w := a.Uint64(), b.Uint64(); g != w {
			t.Fatalf("draw %d: parent perturbed by SplitLabeled (%d != %d)", i, g, w)
		}
	}
}

func TestSplitChildrenPairwiseDistinct(t *testing.T) {
	kids := New(1).SplitN(16)
	seen := map[uint64]int{}
	for i, k := range kids {
		v := k.Uint64()
		if prev, dup := seen[v]; dup {
			t.Fatalf("children %d and %d start with the same draw %d", prev, i, v)
		}
		seen[v] = i
	}
}

func TestStateRoundTripMidSequence(t *testing.T) {
	s := New(99)
	for i := 0; i < 5; i++ {
		s.Uint64()
	}
	// Norm leaves a spare Box-Muller deviate buffered; the snapshot must
	// carry it or the restored stream skips a value.
	s.Norm()
	st := s.State()
	want := []float64{s.Norm(), s.Float64(), s.Norm(), s.Float64()}
	s.Restore(st)
	got := []float64{s.Norm(), s.Float64(), s.Norm(), s.Float64()}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("draw %d after restore: %v != %v", i, got[i], want[i])
		}
	}
}

func TestStateRoundTripAcrossSplits(t *testing.T) {
	s := New(3)
	st := s.State()
	var want []uint64
	for _, c := range s.SplitN(4) {
		want = append(want, c.Uint64())
	}
	wantLabeled := s.SplitLabeled("still").Uint64()
	wantParent := s.Uint64()

	s.Restore(st)
	for i, c := range s.SplitN(4) {
		if g := c.Uint64(); g != want[i] {
			t.Fatalf("restored child %d: %d != %d", i, g, want[i])
		}
	}
	if g := s.SplitLabeled("still").Uint64(); g != wantLabeled {
		t.Fatalf("restored labeled child: %d != %d", g, wantLabeled)
	}
	if g := s.Uint64(); g != wantParent {
		t.Fatalf("restored parent: %d != %d", g, wantParent)
	}
}
