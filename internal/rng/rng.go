// Package rng provides deterministic, splittable pseudo-random number
// generation for the Lumos5G simulator and ML stack.
//
// Every stochastic component of the repository (fading draws, GPS noise,
// tree subsampling, weight initialisation, ...) derives its randomness from
// an rng.Source seeded from a parent, so that a single top-level seed makes
// an entire measurement campaign and training run reproducible. Sources are
// intentionally NOT safe for concurrent use; split one per goroutine.
package rng

import "math"

// Source is a deterministic PRNG based on SplitMix64. It is small, fast,
// passes BigCrush for the purposes we need, and—critically—can be split
// into independent child streams without coordination.
type Source struct {
	state uint64
	// spare Gaussian value for the Box-Muller transform.
	gauss    float64
	hasGauss bool
}

// New returns a Source seeded with seed.
func New(seed uint64) *Source {
	return &Source{state: seed}
}

// golden gamma used by SplitMix64.
const gamma = 0x9E3779B97F4A7C15

// Uint64 returns the next 64 pseudo-random bits.
func (s *Source) Uint64() uint64 {
	s.state += gamma
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Split derives an independent child stream. The child's sequence shares no
// correlation with the parent's subsequent output in any test we rely on.
func (s *Source) Split() *Source {
	return &Source{state: s.Uint64()}
}

// SplitN derives n independent child streams in one serial pass,
// consuming exactly n draws from the parent. It is the pre-split API of
// the deterministic parallel paths: a coordinator splits once, hands
// stream k to worker k, and the result is bit-identical no matter how
// the workers interleave — equivalent to calling Split n times in a row.
func (s *Source) SplitN(n int) []*Source {
	out := make([]*Source, n)
	for i := range out {
		out[i] = s.Split()
	}
	return out
}

// SplitLabeled derives a child stream bound to a string label, so that
// adding a new consumer of randomness does not perturb unrelated streams.
func (s *Source) SplitLabeled(label string) *Source {
	h := s.state
	for i := 0; i < len(label); i++ {
		h = (h ^ uint64(label[i])) * 0x100000001B3
	}
	// Mix once through SplitMix finalizer so short labels diverge fully.
	h += gamma
	h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9
	h = (h ^ (h >> 27)) * 0x94D049BB133111EB
	return &Source{state: h ^ (h >> 31)}
}

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Range returns a uniform value in [lo, hi).
func (s *Source) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*s.Float64()
}

// Norm returns a standard normal deviate using Box-Muller.
func (s *Source) Norm() float64 {
	if s.hasGauss {
		s.hasGauss = false
		return s.gauss
	}
	var u, v, r2 float64
	for {
		u = 2*s.Float64() - 1
		v = 2*s.Float64() - 1
		r2 = u*u + v*v
		if r2 > 0 && r2 < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(r2) / r2)
	s.gauss = v * f
	s.hasGauss = true
	return u * f
}

// NormMeanStd returns a normal deviate with the given mean and std dev.
func (s *Source) NormMeanStd(mean, std float64) float64 {
	return mean + std*s.Norm()
}

// LogNormal returns exp(N(mu, sigma)).
func (s *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(s.NormMeanStd(mu, sigma))
}

// Exp returns an exponentially distributed value with the given rate.
func (s *Source) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exp with non-positive rate")
	}
	return -math.Log(1-s.Float64()) / rate
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool {
	return s.Float64() < p
}

// Perm returns a pseudo-random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	s.Shuffle(p)
	return p
}

// Shuffle permutes p in place (Fisher-Yates).
func (s *Source) Shuffle(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// State is a serialisable snapshot of a Source — what a long-run
// checkpoint persists so an interrupted job resumes with an identical
// random stream.
type State struct {
	S        uint64  `json:"s"`
	Gauss    float64 `json:"gauss,omitempty"`
	HasGauss bool    `json:"has_gauss,omitempty"`
}

// State captures the source's full state, including the spare Box-Muller
// deviate, so Restore continues the exact sequence.
func (s *Source) State() State {
	return State{S: s.state, Gauss: s.gauss, HasGauss: s.hasGauss}
}

// Restore overwrites the source's state with a snapshot taken by State.
func (s *Source) Restore(st State) {
	s.state = st.S
	s.gauss = st.Gauss
	s.hasGauss = st.HasGauss
}
