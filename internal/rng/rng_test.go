package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("got %d collisions across different seeds", same)
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(7)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(9)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean %v too far from 0.5", mean)
	}
}

func TestNormMoments(t *testing.T) {
	s := New(11)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		x := s.Norm()
		sum += x
		sumsq += x * x
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %v too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance %v too far from 1", variance)
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(13)
	seen := make([]bool, 10)
	for i := 0; i < 10000; i++ {
		v := s.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	for v, ok := range seen {
		if !ok {
			t.Fatalf("value %d never produced", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	New(1).Intn(0)
}

func TestSplitIndependence(t *testing.T) {
	parent := New(5)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("sibling splits produced identical first values")
	}
}

func TestSplitLabeledStable(t *testing.T) {
	a := New(5).SplitLabeled("fading")
	b := New(5).SplitLabeled("fading")
	c := New(5).SplitLabeled("gps")
	if a.Uint64() != b.Uint64() {
		t.Fatal("same label should give same stream")
	}
	a2 := New(5).SplitLabeled("fading")
	if a2.Uint64() == c.Uint64() {
		t.Fatal("different labels should give different streams")
	}
}

func TestPermIsPermutation(t *testing.T) {
	check := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRange(t *testing.T) {
	s := New(21)
	for i := 0; i < 1000; i++ {
		v := s.Range(-3, 7)
		if v < -3 || v >= 7 {
			t.Fatalf("Range out of bounds: %v", v)
		}
	}
}

func TestExpPositiveAndMean(t *testing.T) {
	s := New(23)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := s.Exp(2)
		if v < 0 {
			t.Fatalf("Exp returned negative %v", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.02 {
		t.Fatalf("Exp(2) mean %v too far from 0.5", mean)
	}
}

func TestLogNormalPositive(t *testing.T) {
	s := New(29)
	for i := 0; i < 1000; i++ {
		if v := s.LogNormal(0, 1); v <= 0 {
			t.Fatalf("LogNormal returned non-positive %v", v)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	s := New(31)
	const n = 100000
	count := 0
	for i := 0; i < n; i++ {
		if s.Bool(0.3) {
			count++
		}
	}
	frac := float64(count) / n
	if math.Abs(frac-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) frequency %v", frac)
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

func BenchmarkNorm(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Norm()
	}
}
