package mapserver

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"lumos5g"
)

// trainedChain builds a two-tier L+M → L chain from the shared test
// dataset.
func trainedChain(t *testing.T) *lumos5g.FallbackChain {
	t.Helper()
	_, pred := setup(t)
	// Reuse the cached dataset indirectly: train an L tier on the same
	// campaign the suite already generated.
	area, err := lumos5g.AreaByName("Airport")
	if err != nil {
		t.Fatal(err)
	}
	cfg := lumos5g.CampaignConfig{Seed: 1, WalkPasses: 3, BackgroundUEProb: 0.1}
	clean, _ := lumos5g.CleanDataset(lumos5g.GenerateArea(area, cfg))
	lPred, err := lumos5g.Train(clean, lumos5g.GroupL, lumos5g.ModelGDBT, lumos5g.Scale{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	chain, err := lumos5g.NewFallbackChain(250, pred, lPred)
	if err != nil {
		t.Fatal(err)
	}
	return chain
}

func TestPredictDegradesThroughChainTiers(t *testing.T) {
	tm, _ := setup(t)
	s, err := NewWithChain(tm, trainedChain(t))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s)
	defer srv.Close()

	// Full query: first tier serves.
	resp, body := get(t, fmt.Sprintf("%s/predict?lat=%f&lon=%f&speed=4&bearing=10", srv.URL, testLat, testLon))
	var pr predictResponse
	if err := json.Unmarshal([]byte(body), &pr); err != nil {
		t.Fatalf("%d %s: %v", resp.StatusCode, body, err)
	}
	if pr.Tier != 0 || pr.Degraded || pr.Source != "L+M" {
		t.Fatalf("full query: %+v", pr)
	}

	// No kinematics: location tier serves, response says why.
	_, body = get(t, fmt.Sprintf("%s/predict?lat=%f&lon=%f", srv.URL, testLat, testLon))
	if err := json.Unmarshal([]byte(body), &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Tier != 1 || !pr.Degraded || pr.Source != "L" || len(pr.Missing) == 0 {
		t.Fatalf("location-only query: %+v", pr)
	}

	// Health reflects the chain shape and serving counts.
	_, body = get(t, srv.URL+"/healthz")
	var h healthJSON
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatal(err)
	}
	if !h.Model || h.Degraded || len(h.Tiers) != 3 {
		t.Fatalf("health: %+v", h)
	}
	var served uint64
	for _, n := range h.TiersServed {
		served += n
	}
	if served != 2 {
		t.Fatalf("tiers_served %v", h.TiersServed)
	}
}

func TestReloadRejectsCorruptKeepsServing(t *testing.T) {
	tm, _ := setup(t)
	chain := trainedChain(t)
	s, err := NewWithChain(tm, chain)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "model.l5g")
	if err := chain.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if err := s.ReloadModelFile(path); err != nil {
		t.Fatal(err)
	}
	if reloads, rejected, lastErr := s.ReloadStats(); reloads != 1 || rejected != 0 || lastErr != "" {
		t.Fatalf("after good reload: %d %d %q", reloads, rejected, lastErr)
	}

	// Corrupt the artifact: reload must fail, old model must keep
	// serving, health must report the rejection.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := s.ReloadModelFile(path); err == nil {
		t.Fatal("corrupt artifact must be rejected")
	}
	if s.Chain() == nil {
		t.Fatal("old model dropped on rejected reload")
	}
	if reloads, rejected, lastErr := s.ReloadStats(); reloads != 1 || rejected != 1 || lastErr == "" {
		t.Fatalf("after rejected reload: %d %d %q", reloads, rejected, lastErr)
	}

	// Truncated artifact: same story.
	if err := os.WriteFile(path, raw[:10], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := s.ReloadModelFile(path); err == nil {
		t.Fatal("truncated artifact must be rejected")
	}

	srv := httptest.NewServer(s)
	defer srv.Close()
	resp, body := get(t, fmt.Sprintf("%s/predict?lat=%f&lon=%f&speed=4&bearing=10", srv.URL, testLat, testLon))
	if resp.StatusCode != 200 {
		t.Fatalf("predict after rejected reloads: %d %s", resp.StatusCode, body)
	}
	var h healthJSON
	_, body = get(t, srv.URL+"/healthz")
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatal(err)
	}
	if !h.Degraded || h.LastReloadError == "" || h.Rejected != 2 {
		t.Fatalf("health after rejections: %+v", h)
	}
}

// TestPredictDuringHotSwap hammers /predict from many goroutines while
// the model is concurrently reloaded from alternating good and corrupt
// artifacts — every response must be a valid prediction (run under
// -race; `make tier1` does).
func TestPredictDuringHotSwap(t *testing.T) {
	tm, _ := setup(t)
	chain := trainedChain(t)
	s, err := NewWithChain(tm, chain)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	good := filepath.Join(dir, "good.l5g")
	bad := filepath.Join(dir, "bad.l5g")
	if err := chain.SaveFile(good); err != nil {
		t.Fatal(err)
	}
	raw, _ := os.ReadFile(good)
	raw[len(raw)-3] ^= 0x1
	if err := os.WriteFile(bad, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				url := fmt.Sprintf("/predict?lat=%f&lon=%f", testLat, testLon)
				if i%2 == 0 {
					url += "&speed=4&bearing=10"
				}
				rr := httptest.NewRecorder()
				s.ServeHTTP(rr, httptest.NewRequest("GET", url, nil))
				if rr.Code != 200 {
					t.Errorf("predict during swap: %d %s", rr.Code, rr.Body.String())
					return
				}
				var pr predictResponse
				if err := json.Unmarshal(rr.Body.Bytes(), &pr); err != nil || pr.Mbps < 0 {
					t.Errorf("bad response during swap: %v %s", err, rr.Body.String())
					return
				}
			}
		}(g)
	}
	for i := 0; i < 40; i++ {
		if i%3 == 2 {
			_ = s.ReloadModelFile(bad) // must reject and keep serving
		} else if err := s.ReloadModelFile(good); err != nil {
			t.Errorf("good reload failed: %v", err)
		}
		if i%7 == 0 {
			s.SetChain(chain)
		}
	}
	close(stop)
	wg.Wait()
	if s.Chain() == nil {
		t.Fatal("chain lost during swaps")
	}
}

func TestWatchModelFile(t *testing.T) {
	tm, _ := setup(t)
	chain := trainedChain(t)
	s, err := NewWithChain(tm, nil)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "model.l5g")

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	events := make(chan error, 64)
	go s.WatchModelFile(ctx, path, 5*time.Millisecond, func(err error) { events <- err })

	// The artifact appears: the watcher must pick it up.
	if err := chain.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-events:
		if err != nil {
			t.Fatalf("watcher rejected a good artifact: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("watcher never loaded the new artifact")
	}
	if s.Chain() == nil {
		t.Fatal("watcher did not install the model")
	}

	// The artifact is replaced by garbage: the watcher must reject it
	// and keep the old model.
	if err := os.WriteFile(path, []byte("not a model at all......"), 0o644); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(5 * time.Second)
	for {
		select {
		case err := <-events:
			if err == nil {
				continue // a late duplicate of the good load
			}
			if s.Chain() == nil {
				t.Fatal("old model dropped on corrupt watch reload")
			}
			return
		case <-deadline:
			t.Fatal("watcher never saw the corrupt artifact")
		}
	}
}

// TestStartModelWatchStops pins the drain contract of the joining stop
// handle: stop() cancels the poller AND waits for its goroutine to
// exit, so a drain sequence that calls it leaves no watcher stat-ing
// the artifact or swapping models behind the shutdown.
func TestStartModelWatchStops(t *testing.T) {
	tm, _ := setup(t)
	chain := trainedChain(t)
	s, err := NewWithChain(tm, nil)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.l5g")
	events := make(chan error, 64)
	stop := s.StartModelWatch(path, 2*time.Millisecond, func(err error) { events <- err })

	// Prove the watcher is live: drop an artifact and wait for the load.
	if err := chain.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-events:
		if err != nil {
			t.Fatalf("watcher rejected a good artifact: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("watcher never loaded the artifact")
	}

	// stop must join the goroutine, and calling it again must be a no-op.
	joined := make(chan struct{})
	go func() {
		stop()
		stop()
		close(joined)
	}()
	select {
	case <-joined:
	case <-time.After(5 * time.Second):
		t.Fatal("stop() did not join the watcher goroutine")
	}

	// The goroutine is gone: rewriting the artifact produces no events.
	for len(events) > 0 {
		<-events
	}
	if err := chain.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // 25 poll intervals, were it alive
	if n := len(events); n != 0 {
		t.Fatalf("watcher still polling after stop: %d events", n)
	}
}
