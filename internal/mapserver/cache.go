package mapserver

import (
	"container/list"
	"math"
	"sync"

	"lumos5g/internal/engine"
	"lumos5g/internal/geo"
)

// The prediction cache memoises /predict answers keyed on the quantized
// query (engine.Key: map cell × speed bucket × compass sector × which
// optional sensors the query carried — the same quantization the fleet
// router partitions on, see internal/engine/key.go).
//
// Concurrency model: an LRU (mutex-guarded map + intrusive list) whose
// entries are filled exactly once. The first goroutine to miss a key
// becomes its leader and computes the prediction outside the lock;
// followers arriving meanwhile find the pending entry and block on its
// ready channel (singleflight — one model walk per key no matter how
// many UEs ask at once). The close of ready happens-after the leader's
// writes, so followers read the response race-free.
//
// Invalidation is wholesale and atomic: the cache lives next to the
// serving chain under the Server's lock, and every model swap
// (SetChain / ReloadModelFile) installs a fresh empty cache, so a
// response computed by an old model can never be served after the swap.
//
// The cache holds no counters of its own. getOrCompute reports what
// happened as a cacheOutcome and the handler — the single owner of the
// serving counters — records it; only the two events the handler cannot
// see (LRU evictions, leader-abandoned entries) surface through the
// onEvict/onAbandon hooks.

// predKey is the quantized query identity, owned by internal/engine so
// the cache key and the fleet partition key can never drift apart.
type predKey = engine.Key

// bearingSectors mirrors the engine's compass quantization for the edge
// tests in cache_test.go.
const bearingSectors = engine.BearingSectors

// quantizeKey buckets one query (see engine.Quantize).
func quantizeKey(px geo.Pixel, speed, bearing *float64) predKey {
	return engine.Quantize(px, speed, bearing)
}

// cacheOutcome says how getOrCompute answered, so the handler can keep
// the counting identity responses = Σ tiers_served + hits + uncached
// exact: a miss is the one case where the handler also published a
// model walk; a hit served without one; uncached recomputed behind an
// abandoned entry; invalid produced a value with no JSON encoding.
type cacheOutcome uint8

const (
	outcomeHit cacheOutcome = iota
	outcomeMiss
	outcomeUncached
	outcomeInvalid
)

func (o cacheOutcome) String() string {
	switch o {
	case outcomeHit:
		return "hit"
	case outcomeMiss:
		return "miss"
	case outcomeUncached:
		return "uncached"
	default:
		return "invalid"
	}
}

// band is the uncertainty triple around a response's Mbps (the p50):
// the conformal p10/p90 bounds and whether the serving tier carried a
// real calibration (has=false means the triple is degenerate at Mbps).
type band struct {
	p10, p90 float64
	has      bool
}

// degenerateBand pins the zero-width band at mbps.
func degenerateBand(mbps float64) band { return band{p10: mbps, p90: mbps} }

// bandOf extracts the band from an interval-carrying engine answer.
func bandOf(p engine.Prediction) band {
	return band{p10: p.P10, p90: p.P90, has: p.HasInterval}
}

// bandSafe reports whether the band has a JSON encoding (see wireSafe).
func bandSafe(bd band) bool {
	return !math.IsNaN(bd.p10) && !math.IsInf(bd.p10, 0) &&
		!math.IsNaN(bd.p90) && !math.IsInf(bd.p90, 0)
}

// cacheEntry is one memoised prediction. One model walk fills both wire
// forms — the interval-off body (bit-identical to the pre-interval
// format) and the interval body — so a key serves either negotiation
// from the same entry and the cache stays keyed on the quantized query
// alone. ready is closed by the leader after resp/body/ibody are
// written; a nil body after ready means the leader failed mid-compute
// (it panicked, or produced a wire-unsafe value) and the reader must
// compute for itself.
type cacheEntry struct {
	ready chan struct{}
	resp  predictResponse
	body  []byte // marshalled point JSON wire form, newline-terminated
	ibody []byte // marshalled interval JSON wire form, newline-terminated
}

type lruItem struct {
	key predKey
	e   *cacheEntry
}

// predCache is the LRU + singleflight store. One instance serves
// exactly one model generation.
type predCache struct {
	cap       int
	onEvict   func() // LRU eviction (may be nil)
	onAbandon func() // leader abandoned a pending entry (may be nil)

	mu    sync.Mutex
	ll    *list.List // front = most recently used
	items map[predKey]*list.Element
}

func newPredCache(capacity int, onEvict, onAbandon func()) *predCache {
	if capacity <= 0 {
		return nil
	}
	return &predCache{
		cap:       capacity,
		onEvict:   onEvict,
		onAbandon: onAbandon,
		ll:        list.New(),
		items:     make(map[predKey]*list.Element, capacity),
	}
}

// len reports the current entry count (tests and /healthz).
func (c *predCache) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// dropEntry removes key if it still maps to el (the leader's own entry).
func (c *predCache) dropEntry(key predKey, el *list.Element) {
	c.mu.Lock()
	if cur, ok := c.items[key]; ok && cur == el {
		c.ll.Remove(el)
		delete(c.items, key)
	}
	c.mu.Unlock()
}

// computer produces one prediction (point form plus band) for a cache
// miss. The hot path passes the handler's pooled predictCall so a
// request allocates no per-call closure; tests use the computeFunc
// adapter.
type computer interface {
	computePredict() (predictResponse, band)
}

// computeFunc adapts a plain point-form function to the computer
// interface with the degenerate band.
type computeFunc func() predictResponse

func (f computeFunc) computePredict() (predictResponse, band) {
	resp := f()
	return resp, degenerateBand(resp.Mbps)
}

// getOrCompute is the closure-taking form of run, kept for tests and
// non-hot callers (point bodies only).
func (c *predCache) getOrCompute(key predKey, compute func() predictResponse) (predictResponse, []byte, cacheOutcome) {
	return c.run(key, computeFunc(compute), false)
}

// run returns the response and wire body for key, computing and
// inserting it (once, whatever the concurrency) on a miss. wantIval
// selects which of the entry's two bodies is returned; the leader
// renders both, so the flavor a key was first asked in never decides
// what later requests can negotiate. A nil body (outcomeInvalid) means
// the computed response has no JSON wire form and must not be served.
func (c *predCache) run(key predKey, comp computer, wantIval bool) (predictResponse, []byte, cacheOutcome) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		e := el.Value.(*lruItem).e
		c.mu.Unlock()
		<-e.ready
		if e.body != nil {
			if wantIval {
				return e.resp, e.ibody, outcomeHit
			}
			return e.resp, e.body, outcomeHit
		}
		// The leader abandoned the entry; answer uncached.
		resp, bd := comp.computePredict()
		body := marshalFlavor(resp, bd, wantIval)
		if body == nil {
			return resp, nil, outcomeInvalid
		}
		return resp, body, outcomeUncached
	}
	e := &cacheEntry{ready: make(chan struct{})}
	el := c.ll.PushFront(&lruItem{key: key, e: e})
	c.items[key] = el
	if c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruItem).key)
		if c.onEvict != nil {
			c.onEvict()
		}
	}
	c.mu.Unlock()

	done := false
	defer func() {
		if !done {
			// compute panicked: drop the entry so followers and future
			// requests recompute, and unblock anyone already waiting.
			c.dropEntry(key, el)
			close(e.ready)
			if c.onAbandon != nil {
				c.onAbandon()
			}
		}
	}()
	resp, bd := comp.computePredict()
	body := marshalResponse(resp)
	ibody := marshalIntervalResponse(resp, bd)
	done = true
	if body == nil || ibody == nil {
		// Wire-unsafe value: never publish it. Drop the entry so the key
		// stays computable, unblock waiters (they recompute for
		// themselves), and report the abandonment.
		c.dropEntry(key, el)
		close(e.ready)
		if c.onAbandon != nil {
			c.onAbandon()
		}
		return resp, nil, outcomeInvalid
	}
	e.resp = resp
	e.body = body
	e.ibody = ibody
	close(e.ready)
	if wantIval {
		return e.resp, e.ibody, outcomeMiss
	}
	return e.resp, e.body, outcomeMiss
}

// wireSafe reports whether a response can be encoded to JSON at all:
// encoding/json has no representation for NaN or ±Inf, and the chain's
// "never returns them" guarantee does not survive hostile model
// artifacts or degenerate maps, so the serving path checks instead of
// trusting.
func wireSafe(resp predictResponse) bool {
	return !math.IsNaN(resp.Mbps) && !math.IsInf(resp.Mbps, 0)
}

// marshalResponse renders the wire body exactly as json.Encoder would
// (trailing newline included) so cached and uncached responses are
// byte-identical. Returns nil — never panics — when the response has no
// JSON encoding; the caller turns that into a clean 500. The body is
// rendered once and memoised alongside the cache entry, so a hit never
// pays the encoding again.
func marshalResponse(resp predictResponse) []byte {
	b := make([]byte, 0, 128)
	return appendMarshalResponse(b, resp)
}

// appendMarshalResponse is marshalResponse into a caller-owned buffer.
// NOTE: cached bodies must own their bytes — only pass a fresh buffer
// when the result is stored.
func appendMarshalResponse(dst []byte, resp predictResponse) []byte {
	if !wireSafe(resp) {
		return nil
	}
	dst = appendPredictResponse(dst, resp)
	return append(dst, '\n')
}

// marshalIntervalResponse is marshalResponse for the interval wire
// form: the response with its p10/p50/p90 band spliced in. Nil when
// either the point value or the band has no JSON encoding.
func marshalIntervalResponse(resp predictResponse, bd band) []byte {
	if !wireSafe(resp) || !bandSafe(bd) {
		return nil
	}
	b := make([]byte, 0, 160)
	b = appendPredictIntervalResponse(b, intervalResponse(resp, bd))
	return append(b, '\n')
}

// marshalFlavor renders whichever wire form the request negotiated.
func marshalFlavor(resp predictResponse, bd band, wantIval bool) []byte {
	if wantIval {
		return marshalIntervalResponse(resp, bd)
	}
	return marshalResponse(resp)
}
