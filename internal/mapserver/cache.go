package mapserver

import (
	"container/list"
	"encoding/json"
	"math"
	"sync"
	"sync/atomic"

	"lumos5g/internal/geo"
)

// The prediction cache memoises /predict answers keyed on the quantized
// query: map cell (the 2 m grid of the throughput map) × speed bucket ×
// compass sector × which optional sensors the query carried. UEs moving
// through an area re-ask the same cell-level questions at high QPS, and
// the model's answer only varies meaningfully at that granularity — two
// pedestrians in the same cell heading the same way get the same plan.
//
// Concurrency model: an LRU (mutex-guarded map + intrusive list) whose
// entries are filled exactly once. The first goroutine to miss a key
// becomes its leader and computes the prediction outside the lock;
// followers arriving meanwhile find the pending entry and block on its
// ready channel (singleflight — one model walk per key no matter how
// many UEs ask at once). The close of ready happens-after the leader's
// writes, so followers read the response race-free.
//
// Invalidation is wholesale and atomic: the cache lives next to the
// serving chain under the Server's lock, and every model swap
// (SetChain / ReloadModelFile) installs a fresh empty cache, so a
// response computed by an old model can never be served after the swap.
// Hit/miss/eviction counters live on the Server and survive swaps; they
// are surfaced in /healthz.

// predKey is the quantized query identity. Absent optional sensors are
// encoded as -1 so "no speed" and "speed 0" stay distinct keys — they
// are served by different chain tiers.
type predKey struct {
	col, row int32 // throughput-map grid cell (2 m × 2 m)
	speedB   int16 // km/h bucket, -1 when the query carried no speed
	bearingB int16 // 22.5° compass sector, -1 when absent
}

// speedBucketKmh is the speed quantization step: walking/driving
// regimes, the distinction the mobility features actually respond to,
// differ at whole-km/h granularity.
const speedBucketKmh = 1.0

// bearingSectors divides the compass into 16 sectors of 22.5°.
const bearingSectors = 16

// quantizeKey buckets one query.
func quantizeKey(px geo.Pixel, speed, bearing *float64) predKey {
	k := predKey{col: int32(px.X / 2), row: int32(px.Y / 2), speedB: -1, bearingB: -1}
	if speed != nil {
		k.speedB = int16(*speed / speedBucketKmh)
	}
	if bearing != nil {
		deg := math.Mod(*bearing, 360)
		if deg < 0 {
			deg += 360
		}
		s := int16(deg / (360 / bearingSectors))
		if s >= bearingSectors {
			s = bearingSectors - 1
		}
		k.bearingB = s
	}
	return k
}

// cacheStats are the Server-lifetime counters (they survive cache swaps
// on model reload).
type cacheStats struct {
	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
}

// cacheEntry is one memoised prediction. ready is closed by the leader
// after resp/body are written; a nil body after ready means the leader
// failed mid-compute (it panicked and the entry was abandoned) and the
// reader must compute for itself.
type cacheEntry struct {
	ready chan struct{}
	resp  predictResponse
	body  []byte // marshalled JSON wire form, newline-terminated
}

type lruItem struct {
	key predKey
	e   *cacheEntry
}

// predCache is the LRU + singleflight store. One instance serves
// exactly one model generation.
type predCache struct {
	stats *cacheStats
	cap   int

	mu    sync.Mutex
	ll    *list.List // front = most recently used
	items map[predKey]*list.Element
}

func newPredCache(capacity int, stats *cacheStats) *predCache {
	if capacity <= 0 {
		return nil
	}
	return &predCache{
		stats: stats,
		cap:   capacity,
		ll:    list.New(),
		items: make(map[predKey]*list.Element, capacity),
	}
}

// len reports the current entry count (tests and /healthz).
func (c *predCache) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// getOrCompute returns the cached response and wire body for key,
// computing and inserting it (once, whatever the concurrency) on a miss.
func (c *predCache) getOrCompute(key predKey, compute func() predictResponse) (predictResponse, []byte) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		e := el.Value.(*lruItem).e
		c.mu.Unlock()
		<-e.ready
		if e.body != nil {
			c.stats.hits.Add(1)
			return e.resp, e.body
		}
		// The leader abandoned the entry; answer uncached.
		resp := compute()
		return resp, marshalResponse(resp)
	}
	e := &cacheEntry{ready: make(chan struct{})}
	el := c.ll.PushFront(&lruItem{key: key, e: e})
	c.items[key] = el
	if c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruItem).key)
		c.stats.evictions.Add(1)
	}
	c.mu.Unlock()

	done := false
	defer func() {
		if !done {
			// compute panicked: drop the entry so followers and future
			// requests recompute, and unblock anyone already waiting.
			c.mu.Lock()
			if cur, ok := c.items[key]; ok && cur == el {
				c.ll.Remove(el)
				delete(c.items, key)
			}
			c.mu.Unlock()
			close(e.ready)
		}
	}()
	resp := compute()
	e.resp = resp
	e.body = marshalResponse(resp)
	done = true
	close(e.ready)
	c.stats.misses.Add(1)
	return e.resp, e.body
}

// marshalResponse renders the wire body exactly as json.Encoder would
// (trailing newline included) so cached and uncached responses are
// byte-identical.
func marshalResponse(resp predictResponse) []byte {
	b, err := json.Marshal(resp)
	if err != nil {
		// predictResponse contains only marshal-safe fields; NaN/Inf
		// cannot reach here because the chain never returns them.
		panic(err)
	}
	return append(b, '\n')
}
