package mapserver

import (
	"bytes"
	"encoding/json"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Hardening middleware for the map service: the serving path must stay
// up while UEs in marginal coverage hammer it with slow, malformed or
// abandoned requests, so every route runs behind panic recovery, a
// request timeout, a method filter and a request-size cap, and all
// errors leave the server as structured JSON.

// apiError is the wire form of every error response.
type apiError struct {
	Error string `json:"error"`
}

// encodePool recycles the JSON staging buffers of writeJSON so the hot
// serving paths do not grow a fresh encoder buffer per response.
var encodePool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// jsonCT is the Content-Type value shared by every JSON response.
// Assigning the slice directly (setJSONType) instead of Header().Set
// avoids the per-request []string{v} allocation Set performs; the slice
// is never mutated, only replaced wholesale by handlers that set a
// different type.
var jsonCT = []string{"application/json"}

func setJSONType(w http.ResponseWriter) {
	w.Header()["Content-Type"] = jsonCT
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	buf := encodePool.Get().(*bytes.Buffer)
	buf.Reset()
	// Encode into the pooled buffer first: the bytes on the wire are the
	// same as encoding straight into w (Encoder's trailing newline
	// included), but a marshal failure can still become a clean 500
	// instead of a torn body.
	if err := json.NewEncoder(buf).Encode(v); err != nil {
		encodePool.Put(buf)
		setJSONType(w)
		w.WriteHeader(http.StatusInternalServerError)
		_, _ = w.Write([]byte(`{"error":"response encoding failed"}` + "\n"))
		return
	}
	setJSONType(w)
	w.WriteHeader(code)
	_, _ = w.Write(buf.Bytes())
	encodePool.Put(buf)
}

// writeJSONBytes sends a pre-marshalled JSON body (the prediction
// cache's stored wire form) without re-encoding.
func writeJSONBytes(w http.ResponseWriter, code int, body []byte) {
	setJSONType(w)
	w.WriteHeader(code)
	_, _ = w.Write(body)
}

// writeError sends a structured JSON error with the given status.
func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, apiError{Error: msg})
}

// withRecovery converts a handler panic into a 500 JSON error instead of
// killing the connection (and, under some servers, the process).
func withRecovery(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				if rec == http.ErrAbortHandler { // deliberate aborts pass through
					panic(rec)
				}
				writeError(w, http.StatusInternalServerError, "internal server error")
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// withTimeout bounds one request's handler time. http.TimeoutHandler
// buffers the response and handles the writer race safely; the body it
// writes on expiry is our JSON error shape, newline-terminated like
// every other writeJSON response.
func withTimeout(next http.Handler, d time.Duration) http.Handler {
	if d <= 0 {
		return next
	}
	th := http.TimeoutHandler(next, d, `{"error":"request timed out"}`+"\n")
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// GET /predict bypasses the TimeoutHandler envelope. Its handler
		// is CPU-bound with strictly bounded work — a fixed-depth kernel
		// walk, no I/O, no body read — so it cannot hang the way a slow
		// body or a stuck artifact write can, and the http.Server's
		// Read/Write timeouts (serve.go) still bound the connection.
		// TimeoutHandler costs a goroutine, a context with deadline, a
		// cloned header map and a buffered body per request — about half
		// the allocations of the hot path — for protection this route
		// cannot use.
		if r.URL.Path == "/predict" && (r.Method == http.MethodGet || r.Method == http.MethodHead) {
			next.ServeHTTP(w, r)
			return
		}
		// TimeoutHandler writes its expiry body with whatever headers are
		// already on the outer writer, so the JSON content type must be
		// preset here for the 503 to match the rest of the API. On the
		// success path the inner handler's headers are merged over these
		// without deleting preset keys, and every route sets its own
		// Content-Type, so this never leaks onto non-JSON responses.
		setJSONType(w)
		th.ServeHTTP(w, r)
	})
}

// withMethodPolicy rejects anything but GET/HEAD — the service mostly
// publishes artifacts — except for an allowlist of POST-able paths (the
// batch prediction endpoint accepts a JSON body).
func withMethodPolicy(next http.Handler, postPaths map[string]bool) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.Method == http.MethodGet || r.Method == http.MethodHead:
		case r.Method == http.MethodPost && postPaths[r.URL.Path]:
		default:
			allow := "GET, HEAD"
			if postPaths[r.URL.Path] {
				allow = "GET, HEAD, POST"
			}
			w.Header().Set("Allow", allow)
			writeError(w, http.StatusMethodNotAllowed, "method not allowed")
			return
		}
		next.ServeHTTP(w, r)
	})
}

// shedExempt lists the routes the shed gate never touches: liveness and
// metrics probes must reach a saturated server, or the fleet's health
// router would mark a merely-busy replica dead.
var shedExempt = map[string]bool{"/healthz": true, "/metrics": true}

// shedRetryAfter is the Retry-After hint on shed responses, in seconds.
// It is deliberately coarse: the point is to tell well-behaved callers
// (the fleet router, SDK clients) to back off rather than to predict
// when capacity frees up.
const shedRetryAfter = "1"

// withShed rejects work requests beyond limit concurrently in flight
// with a 503 + Retry-After — overload shedding, so a slow model walk
// under a thundering herd degrades into fast explicit backpressure
// instead of a pile of timed-out requests. limit <= 0 disables the gate.
// onShed is called once per shed request (wire it to lumos_shed_total).
func withShed(next http.Handler, limit int, exempt map[string]bool, onShed func()) http.Handler {
	if limit <= 0 {
		return next
	}
	var inFlight atomic.Int64
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if exempt[r.URL.Path] {
			next.ServeHTTP(w, r)
			return
		}
		if n := inFlight.Add(1); n > int64(limit) {
			inFlight.Add(-1)
			onShed()
			w.Header().Set("Retry-After", shedRetryAfter)
			writeError(w, http.StatusServiceUnavailable, "overloaded, retry later")
			return
		}
		defer inFlight.Add(-1)
		next.ServeHTTP(w, r)
	})
}

// withMaxBytes caps request bodies so a misbehaving client cannot stream
// an unbounded payload at a read-only service.
func withMaxBytes(next http.Handler, n int64) http.Handler {
	if n <= 0 {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// GET/HEAD bodies are never read by any handler, so skip the
		// per-request MaxBytesReader wrapper on those methods (it is one
		// allocation on the hot /predict path for a body nobody touches).
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			r.Body = http.MaxBytesReader(w, r.Body, n)
		}
		next.ServeHTTP(w, r)
	})
}
