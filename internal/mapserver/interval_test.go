package mapserver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http/httptest"
	"sync"
	"testing"

	"lumos5g"
	"lumos5g/internal/wire"
)

// TestAppendPredictIntervalResponseMatchesStdlib pins the interval wire
// encoder to encoding/json byte for byte, over the same float forms,
// string escape classes and omitempty boundary the point encoder is
// pinned on.
func TestAppendPredictIntervalResponseMatchesStdlib(t *testing.T) {
	floats := []float64{
		0, math.Copysign(0, -1), 1, -1, 123.456, -981.25, 0.125,
		1e-6, 9.999e-7, 1e-7, 5e-324, 1e21, 1e20 * 9.999, -1e21, 2.5e30,
		math.MaxFloat64, 1234.000244140625, 888.125, 3.14159265358979,
	}
	strs := []string{
		"", "L+M", "map-cell", "quote\"back\\slash", "tab\tnew\nret\r",
		"html<&>", "uni\u00e9\u4e16\u754c", "bad\xffutf8",
		"sep\u2028and\u2029end", "emoji\U0001F600",
	}
	missing := [][]string{nil, {}, {"speed"}, {"speed", "bearing"}, {"we<ird&"}}
	var i int
	for _, f := range floats {
		for _, s := range strs {
			resp := predictIntervalResponse{
				Mbps:     f,
				P10:      floats[i%len(floats)],
				P50:      f,
				P90:      floats[(i+5)%len(floats)],
				Class:    s,
				Group:    strs[i%len(strs)],
				Source:   strs[(i+3)%len(strs)],
				Tier:     i%5 - 1,
				Degraded: i%2 == 0,
				Missing:  missing[i%len(missing)],
			}
			i++
			want, err := json.Marshal(resp)
			if err != nil {
				t.Fatal(err)
			}
			got := appendPredictIntervalResponse(nil, resp)
			if !bytes.Equal(got, want) {
				t.Fatalf("interval encoder diverges for %+v:\n got %s\nwant %s", resp, got, want)
			}
		}
	}
}

// TestMarshalIntervalResponseMatchesEncoder pins the cached interval
// body to json.Encoder output (trailing newline included), and the nil
// returns on wire-unsafe values and bands.
func TestMarshalIntervalResponseMatchesEncoder(t *testing.T) {
	resp := predictResponse{Mbps: 432.1875, Class: "High", Group: "L+M", Source: "L+M", Tier: 0}
	bd := band{p10: 301.5, p90: 598.25, has: true}
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(intervalResponse(resp, bd)); err != nil {
		t.Fatal(err)
	}
	if got := marshalIntervalResponse(resp, bd); !bytes.Equal(got, buf.Bytes()) {
		t.Fatalf("marshalIntervalResponse %q != json.Encoder %q", got, buf.Bytes())
	}
	if marshalIntervalResponse(predictResponse{Mbps: math.NaN()}, bd) != nil {
		t.Fatal("non-finite mbps must have no interval wire form")
	}
	if marshalIntervalResponse(resp, band{p10: math.Inf(1), p90: 1}) != nil {
		t.Fatal("non-finite band must have no interval wire form")
	}
}

var (
	ivalOnce  sync.Once
	ivalTM    *lumos5g.ThroughputMap
	ivalChain *lumos5g.FallbackChain
	ivalLat   float64
	ivalLon   float64
)

// ivalSetup trains one conformally calibrated chain for the interval
// end-to-end tests (the shared setup() predictor is uncalibrated on
// purpose — it pins the degenerate path).
func ivalSetup(t *testing.T) (*lumos5g.ThroughputMap, *lumos5g.FallbackChain) {
	t.Helper()
	ivalOnce.Do(func() {
		area, err := lumos5g.AreaByName("Airport")
		if err != nil {
			panic(err)
		}
		cfg := lumos5g.CampaignConfig{Seed: 3, WalkPasses: 3, BackgroundUEProb: 0.1}
		clean, _ := lumos5g.CleanDataset(lumos5g.GenerateArea(area, cfg))
		ivalTM = lumos5g.BuildThroughputMap(clean, 2)
		chain, err := lumos5g.TrainCalibratedFallbackChain(clean, lumos5g.DefaultFallbackGroups, lumos5g.ModelGDBT, lumos5g.Scale{Seed: 3})
		if err != nil {
			panic(err)
		}
		ivalChain = chain
		ivalLat = clean.Records[50].Latitude
		ivalLon = clean.Records[50].Longitude
	})
	return ivalTM, ivalChain
}

func newIntervalServer(t *testing.T) *httptest.Server {
	t.Helper()
	tm, chain := ivalSetup(t)
	s, err := NewWithChain(tm, chain)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)
	return srv
}

// TestPredictIntervalsEndToEnd: ?intervals=1 serves an ordered
// p10/p50/p90 triple whose p50 is exactly the point answer's mbps —
// whichever negotiation hits the cache first.
func TestPredictIntervalsEndToEnd(t *testing.T) {
	srv := newIntervalServer(t)
	point := fmt.Sprintf("%s/predict?lat=%f&lon=%f&speed=4.5&bearing=10", srv.URL, ivalLat, ivalLon)
	ival := point + "&intervals=1"

	// Interval first (the cache leader), then point, then interval again
	// (a follower hit): every answer must agree on the point value.
	resp, ibody := get(t, ival)
	if resp.StatusCode != 200 {
		t.Fatalf("interval query: %d %s", resp.StatusCode, ibody)
	}
	var iv predictIntervalResponse
	if err := json.Unmarshal([]byte(ibody), &iv); err != nil {
		t.Fatal(err)
	}
	if !(iv.P10 <= iv.P50 && iv.P50 <= iv.P90) {
		t.Fatalf("interval ordering violated: %+v", iv)
	}
	if iv.P50 != iv.Mbps {
		t.Fatalf("p50 %v != mbps %v", iv.P50, iv.Mbps)
	}
	if iv.P10 < 0 {
		t.Fatalf("negative p10 %v", iv.P10)
	}
	if iv.P10 == iv.P90 {
		t.Fatalf("calibrated tier served a zero-width band: %+v", iv)
	}

	resp, pbody := get(t, point)
	if resp.StatusCode != 200 {
		t.Fatalf("point query: %d %s", resp.StatusCode, pbody)
	}
	if bytes.Contains([]byte(pbody), []byte(`"p10"`)) {
		t.Fatalf("interval-off body leaks the band: %s", pbody)
	}
	var pt predictResponse
	if err := json.Unmarshal([]byte(pbody), &pt); err != nil {
		t.Fatal(err)
	}
	if pt.Mbps != iv.Mbps || pt.Source != iv.Source || pt.Tier != iv.Tier {
		t.Fatalf("point answer %+v disagrees with interval answer %+v", pt, iv)
	}

	if _, again := get(t, ival); again != ibody {
		t.Fatalf("interval hit body diverged:\n%s\n%s", again, ibody)
	}
}

// TestIntervalOffBytesUnchanged: on a server whose cache has already
// answered interval requests, the interval-off body is byte-identical
// to the body of a server that never saw an interval request —
// negotiating intervals perturbs nothing for existing clients.
func TestIntervalOffBytesUnchanged(t *testing.T) {
	tm, chain := ivalSetup(t)
	point := "/predict?lat=%f&lon=%f&speed=4.5&bearing=10"

	a, err := NewWithChain(tm, chain)
	if err != nil {
		t.Fatal(err)
	}
	srvA := httptest.NewServer(a)
	defer srvA.Close()
	_, _ = get(t, fmt.Sprintf(srvA.URL+point+"&intervals=1", ivalLat, ivalLon))
	_, bodyA := get(t, fmt.Sprintf(srvA.URL+point, ivalLat, ivalLon))

	b, err := NewWithChain(tm, chain)
	if err != nil {
		t.Fatal(err)
	}
	srvB := httptest.NewServer(b)
	defer srvB.Close()
	_, bodyB := get(t, fmt.Sprintf(srvB.URL+point, ivalLat, ivalLon))

	if bodyA != bodyB {
		t.Fatalf("interval traffic changed the point wire form:\n%s\n%s", bodyA, bodyB)
	}
}

// TestPredictBatchIntervals: the batch interval answers (JSON and the
// v2 binary frame) agree with each other and with single-query answers.
func TestPredictBatchIntervals(t *testing.T) {
	srv := newIntervalServer(t)
	batch := fmt.Sprintf(
		`[{"lat":%f,"lon":%f,"speed":4.5,"bearing":10},{"lat":%f,"lon":%f},{"lat":0,"lon":0}]`,
		ivalLat, ivalLon, ivalLat, ivalLon)

	resp, body := postJSON(t, srv.URL+"/predict/batch?intervals=1", batch)
	if resp.StatusCode != 200 {
		t.Fatalf("json interval batch: %d %s", resp.StatusCode, body)
	}
	var rows []predictIntervalResponse
	if err := json.Unmarshal([]byte(body), &rows); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	for i, r := range rows {
		if !(r.P10 <= r.P50 && r.P50 <= r.P90) || r.P50 != r.Mbps || r.P10 < 0 {
			t.Fatalf("row %d: bad band %+v", i, r)
		}
	}

	// Same batch over the binary interval frame.
	httpResp, frame := postRaw(t, srv.URL+"/predict/batch", []byte(batch), "application/json", wire.ContentTypeIntervals)
	if httpResp.StatusCode != 200 {
		t.Fatalf("binary interval batch: %d %s", httpResp.StatusCode, frame)
	}
	if ct := httpResp.Header.Get("Content-Type"); ct != wire.ContentTypeIntervals {
		t.Fatalf("content type %q", ct)
	}
	rs, err := wire.DecodeResults(frame, maxBatchQueries)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != len(rows) {
		t.Fatalf("binary %d rows, json %d", len(rs), len(rows))
	}
	for i := range rs {
		if rs[i].Mbps != rows[i].Mbps || rs[i].P10 != rows[i].P10 || rs[i].P90 != rows[i].P90 {
			t.Fatalf("row %d: binary %+v != json %+v", i, rs[i], rows[i])
		}
	}

	// And each row agrees with the single-query interval endpoint.
	single := fmt.Sprintf("%s/predict?lat=%f&lon=%f&speed=4.5&bearing=10&intervals=true", srv.URL, ivalLat, ivalLon)
	_, sbody := get(t, single)
	var sv predictIntervalResponse
	if err := json.Unmarshal([]byte(sbody), &sv); err != nil {
		t.Fatal(err)
	}
	if sv.P10 != rows[0].P10 || sv.P50 != rows[0].P50 || sv.P90 != rows[0].P90 {
		t.Fatalf("single %+v != batch row 0 %+v", sv, rows[0])
	}
}

// TestCacheDualBody drives the cache seam directly: one leader walk
// must satisfy both negotiations as hits.
func TestCacheDualBody(t *testing.T) {
	c := newPredCache(8, nil, nil)
	resp := predictResponse{Mbps: 500, Class: "High", Group: "L", Source: "L", Tier: 1}
	bd := band{p10: 400, p90: 620, has: true}
	comp := computerFunc(func() (predictResponse, band) { return resp, bd })
	key := predKey{}

	_, body, outcome := c.run(key, comp, false)
	if outcome != outcomeMiss {
		t.Fatalf("first run outcome %v", outcome)
	}
	if bytes.Contains(body, []byte(`"p10"`)) {
		t.Fatalf("point body carries the band: %s", body)
	}
	_, ibody, outcome := c.run(key, comp, true)
	if outcome != outcomeHit {
		t.Fatalf("interval flavour of a cached key must hit, got %v", outcome)
	}
	var iv predictIntervalResponse
	if err := json.Unmarshal(ibody, &iv); err != nil {
		t.Fatal(err)
	}
	if iv.P10 != bd.p10 || iv.P90 != bd.p90 || iv.P50 != resp.Mbps {
		t.Fatalf("cached interval body %+v does not carry the leader's band", iv)
	}
}

// computerFunc adapts a two-value function to the computer seam.
type computerFunc func() (predictResponse, band)

func (f computerFunc) computePredict() (predictResponse, band) { return f() }
