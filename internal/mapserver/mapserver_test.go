package mapserver

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"lumos5g"
)

var (
	setupOnce sync.Once
	testTM    *lumos5g.ThroughputMap
	testPred  *lumos5g.Predictor
	testLat   float64
	testLon   float64
)

func setup(t *testing.T) (*lumos5g.ThroughputMap, *lumos5g.Predictor) {
	t.Helper()
	setupOnce.Do(func() {
		area, err := lumos5g.AreaByName("Airport")
		if err != nil {
			panic(err)
		}
		cfg := lumos5g.CampaignConfig{Seed: 1, WalkPasses: 3, BackgroundUEProb: 0.1}
		clean, _ := lumos5g.CleanDataset(lumos5g.GenerateArea(area, cfg))
		testTM = lumos5g.BuildThroughputMap(clean, 2)
		p, err := lumos5g.Train(clean, lumos5g.GroupLM, lumos5g.ModelGDBT, lumos5g.Scale{Seed: 1})
		if err != nil {
			panic(err)
		}
		testPred = p
		testLat = clean.Records[50].Latitude
		testLon = clean.Records[50].Longitude
	})
	return testTM, testPred
}

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	tm, pred := setup(t)
	s, err := New(tm, pred)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)
	return srv
}

func get(t *testing.T, url string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 32*1024)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return resp, sb.String()
}

func TestHealthz(t *testing.T) {
	srv := newTestServer(t)
	resp, body := get(t, srv.URL+"/healthz")
	if resp.StatusCode != 200 || !strings.Contains(body, `"ok":true`) {
		t.Fatalf("healthz: %d %s", resp.StatusCode, body)
	}
}

func TestMapSVG(t *testing.T) {
	srv := newTestServer(t)
	resp, body := get(t, srv.URL+"/map.svg")
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if resp.Header.Get("Content-Type") != "image/svg+xml" {
		t.Fatal("wrong content type")
	}
	if !strings.HasPrefix(body, "<svg") {
		t.Fatal("not SVG")
	}
}

func TestCellsJSON(t *testing.T) {
	srv := newTestServer(t)
	resp, body := get(t, srv.URL+"/cells.json")
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var cells []cellJSON
	if err := json.Unmarshal([]byte(body), &cells); err != nil {
		t.Fatal(err)
	}
	if len(cells) == 0 {
		t.Fatal("no cells")
	}
	for _, c := range cells[:5] {
		if c.N <= 0 || c.MeanMbps < 0 {
			t.Fatalf("malformed cell %+v", c)
		}
	}
}

func TestPredict(t *testing.T) {
	srv := newTestServer(t)
	url := fmt.Sprintf("%s/predict?lat=%f&lon=%f&speed=4.5&bearing=10", srv.URL, testLat, testLon)
	resp, body := get(t, url)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var pr predictResponse
	if err := json.Unmarshal([]byte(body), &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Mbps <= 0 || pr.Mbps > 2500 {
		t.Fatalf("implausible prediction %v", pr.Mbps)
	}
	if pr.Class == "" || pr.Group != "L+M" {
		t.Fatalf("response metadata: %+v", pr)
	}
}

func TestPredictValidation(t *testing.T) {
	srv := newTestServer(t)
	if resp, _ := get(t, srv.URL+"/predict?lat=abc&lon=1"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad lat should 400, got %d", resp.StatusCode)
	}
	// Present-but-malformed optional parameters are still client errors.
	if resp, _ := get(t, fmt.Sprintf("%s/predict?lat=%f&lon=%f&speed=abc", srv.URL, testLat, testLon)); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed speed should 400, got %d", resp.StatusCode)
	}
	// A missing speed is a missing sensor, not an error: the fallback
	// chain demotes the query instead of rejecting it.
	resp, body := get(t, fmt.Sprintf("%s/predict?lat=%f&lon=%f", srv.URL, testLat, testLon))
	if resp.StatusCode != 200 {
		t.Fatalf("missing speed should degrade, not fail: %d %s", resp.StatusCode, body)
	}
	var pr predictResponse
	if err := json.Unmarshal([]byte(body), &pr); err != nil {
		t.Fatal(err)
	}
	if !pr.Degraded || pr.Source != lumos5g.LastResortGroup {
		t.Fatalf("single L+M tier without speed should serve from the last resort: %+v", pr)
	}
}

func TestModelDownloadRoundTrip(t *testing.T) {
	srv := newTestServer(t)
	resp, err := http.Get(srv.URL + "/model")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	// The downloaded payload must load into a working chain — the §2.3
	// story end to end.
	chain, err := lumos5g.LoadChain(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	tiers := chain.Tiers()
	if len(tiers) != 1 || tiers[0].Group() != lumos5g.GroupLM {
		t.Fatalf("downloaded chain shape %s", chain)
	}
	if p := chain.Predict(nil); p.Mbps < 0 || p.Mbps > 1e5 {
		t.Fatalf("downloaded model predicts nonsense: %+v", p)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil); err == nil {
		t.Fatal("nil map should error")
	}
	tm, _ := setup(t)
	// A T+M predictor cannot back /predict.
	area, _ := lumos5g.AreaByName("Airport")
	clean, _ := lumos5g.CleanDataset(lumos5g.GenerateArea(area, lumos5g.CampaignConfig{Seed: 2, WalkPasses: 2}))
	tmPred, err := lumos5g.Train(clean, lumos5g.GroupTM, lumos5g.ModelGDBT, lumos5g.Scale{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(tm, tmPred); err == nil {
		t.Fatal("T+M predictor should be rejected")
	}
	// Nil predictor is fine; /model then 404s but /predict still answers
	// — degraded — from the throughput map itself.
	s, err := New(tm, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s)
	defer srv.Close()
	if resp, _ := get(t, srv.URL+"/model"); resp.StatusCode != http.StatusNotFound {
		t.Fatal("model route should 404 without a predictor")
	}
	resp, body := get(t, fmt.Sprintf("%s/predict?lat=%f&lon=%f", srv.URL, testLat, testLon))
	if resp.StatusCode != 200 {
		t.Fatalf("predict without a model should serve from the map: %d %s", resp.StatusCode, body)
	}
	var pr predictResponse
	if err := json.Unmarshal([]byte(body), &pr); err != nil {
		t.Fatal(err)
	}
	if !pr.Degraded || pr.Tier != -1 || (pr.Source != "map-cell" && pr.Source != "map-mean") {
		t.Fatalf("model-less predict should be map-served and degraded: %+v", pr)
	}
}
