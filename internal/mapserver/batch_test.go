package mapserver

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
)

func postJSON(t *testing.T, url, body string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 32*1024)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return resp, sb.String()
}

// TestPredictBatchEndpoint: each element of a batch answer must equal
// the corresponding single-query /predict answer.
func TestPredictBatchEndpoint(t *testing.T) {
	srv := newTestServer(t)

	singles := []string{
		fmt.Sprintf("%s/predict?lat=%f&lon=%f&speed=4.5&bearing=10", srv.URL, testLat, testLon),
		fmt.Sprintf("%s/predict?lat=%f&lon=%f", srv.URL, testLat, testLon),
		fmt.Sprintf("%s/predict?lat=0&lon=0", srv.URL),
	}
	want := make([]predictResponse, len(singles))
	for i, u := range singles {
		resp, body := get(t, u)
		if resp.StatusCode != 200 {
			t.Fatalf("single query %d: %d %s", i, resp.StatusCode, body)
		}
		if err := json.Unmarshal([]byte(body), &want[i]); err != nil {
			t.Fatal(err)
		}
	}

	batch := fmt.Sprintf(
		`[{"lat":%f,"lon":%f,"speed":4.5,"bearing":10},{"lat":%f,"lon":%f},{"lat":0,"lon":0}]`,
		testLat, testLon, testLat, testLon)
	resp, body := postJSON(t, srv.URL+"/predict/batch", batch)
	if resp.StatusCode != 200 {
		t.Fatalf("batch: %d %s", resp.StatusCode, body)
	}
	var got []predictResponse
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("batch returned %d answers for %d queries", len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("query %d: batch %+v != single %+v", i, got[i], want[i])
		}
	}
}

func TestPredictBatchValidation(t *testing.T) {
	srv := newTestServer(t)

	cases := []struct {
		name, body string
	}{
		{"malformed json", `{"lat":`},
		{"not an array", `{"lat":1,"lon":2}`},
		{"empty batch", `[]`},
		{"lat out of range", `[{"lat":91,"lon":0}]`},
		{"lon out of range", `[{"lat":0,"lon":-181}]`},
		{"bad speed", `[{"lat":0,"lon":0,"speed":-1}]`},
		{"bad bearing", `[{"lat":0,"lon":0,"bearing":999}]`},
	}
	for _, tc := range cases {
		if resp, body := postJSON(t, srv.URL+"/predict/batch", tc.body); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: want 400, got %d %s", tc.name, resp.StatusCode, body)
		}
	}

	// The batch-size cap is enforced before any prediction runs.
	var sb strings.Builder
	sb.WriteString("[")
	for i := 0; i <= maxBatchQueries; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		sb.WriteString(`{"lat":0,"lon":0}`)
	}
	sb.WriteString("]")
	if resp, body := postJSON(t, srv.URL+"/predict/batch", sb.String()); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized batch: want 400, got %d %s", resp.StatusCode, body)
	}
}

// TestBatchMethodPolicy: POST is allowed only on /predict/batch; the
// rest of the service stays read-only.
func TestBatchMethodPolicy(t *testing.T) {
	srv := newTestServer(t)

	if resp, _ := postJSON(t, srv.URL+"/predict", `[]`); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /predict: want 405, got %d", resp.StatusCode)
	}
	if resp, _ := postJSON(t, srv.URL+"/healthz", `{}`); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /healthz: want 405, got %d", resp.StatusCode)
	}
	resp, err := http.Get(srv.URL + "/predict/batch")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /predict/batch: want 405, got %d", resp.StatusCode)
	}
	if allow := resp.Header.Get("Allow"); !strings.Contains(allow, "POST") {
		t.Fatalf("GET /predict/batch Allow header %q should advertise POST", allow)
	}
}

// TestPredictBatchModelless: a server without a model answers every
// batch element from the throughput map, like the single endpoint.
func TestPredictBatchModelless(t *testing.T) {
	tm, _ := setup(t)
	s, err := New(tm, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s)
	defer srv.Close()

	batch := fmt.Sprintf(`[{"lat":%f,"lon":%f},{"lat":0,"lon":0}]`, testLat, testLon)
	resp, body := postJSON(t, srv.URL+"/predict/batch", batch)
	if resp.StatusCode != 200 {
		t.Fatalf("modelless batch: %d %s", resp.StatusCode, body)
	}
	var got []predictResponse
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatal(err)
	}
	if got[0].Tier != -1 || got[0].Source != "map-cell" {
		t.Fatalf("in-map query should answer from its cell: %+v", got[0])
	}
	if got[1].Tier != -1 || got[1].Source != "map-mean" {
		t.Fatalf("off-map query should answer from the map mean: %+v", got[1])
	}
}
