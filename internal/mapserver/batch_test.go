package mapserver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"lumos5g/internal/wire"
)

func postJSON(t *testing.T, url, body string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 32*1024)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return resp, sb.String()
}

// TestPredictBatchEndpoint: each element of a batch answer must equal
// the corresponding single-query /predict answer.
func TestPredictBatchEndpoint(t *testing.T) {
	srv := newTestServer(t)

	singles := []string{
		fmt.Sprintf("%s/predict?lat=%f&lon=%f&speed=4.5&bearing=10", srv.URL, testLat, testLon),
		fmt.Sprintf("%s/predict?lat=%f&lon=%f", srv.URL, testLat, testLon),
		fmt.Sprintf("%s/predict?lat=0&lon=0", srv.URL),
	}
	want := make([]predictResponse, len(singles))
	for i, u := range singles {
		resp, body := get(t, u)
		if resp.StatusCode != 200 {
			t.Fatalf("single query %d: %d %s", i, resp.StatusCode, body)
		}
		if err := json.Unmarshal([]byte(body), &want[i]); err != nil {
			t.Fatal(err)
		}
	}

	batch := fmt.Sprintf(
		`[{"lat":%f,"lon":%f,"speed":4.5,"bearing":10},{"lat":%f,"lon":%f},{"lat":0,"lon":0}]`,
		testLat, testLon, testLat, testLon)
	resp, body := postJSON(t, srv.URL+"/predict/batch", batch)
	if resp.StatusCode != 200 {
		t.Fatalf("batch: %d %s", resp.StatusCode, body)
	}
	var got []predictResponse
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("batch returned %d answers for %d queries", len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("query %d: batch %+v != single %+v", i, got[i], want[i])
		}
	}
}

func TestPredictBatchValidation(t *testing.T) {
	srv := newTestServer(t)

	cases := []struct {
		name, body string
	}{
		{"malformed json", `{"lat":`},
		{"not an array", `{"lat":1,"lon":2}`},
		{"empty batch", `[]`},
		{"lat out of range", `[{"lat":91,"lon":0}]`},
		{"lon out of range", `[{"lat":0,"lon":-181}]`},
		{"bad speed", `[{"lat":0,"lon":0,"speed":-1}]`},
		{"bad bearing", `[{"lat":0,"lon":0,"bearing":999}]`},
	}
	for _, tc := range cases {
		if resp, body := postJSON(t, srv.URL+"/predict/batch", tc.body); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: want 400, got %d %s", tc.name, resp.StatusCode, body)
		}
	}

	// The batch-size cap is enforced before any prediction runs.
	var sb strings.Builder
	sb.WriteString("[")
	for i := 0; i <= maxBatchQueries; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		sb.WriteString(`{"lat":0,"lon":0}`)
	}
	sb.WriteString("]")
	if resp, body := postJSON(t, srv.URL+"/predict/batch", sb.String()); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized batch: want 400, got %d %s", resp.StatusCode, body)
	}
}

// postRaw sends body with explicit Content-Type/Accept headers and
// returns the response plus its full body.
func postRaw(t *testing.T, url string, body []byte, contentType, accept string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", contentType)
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	got, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, got
}

// TestPredictBatchBinary covers both directions of the content
// negotiation independently: a binary request frame decodes to the same
// answers as the JSON form, a binary Accept gets a binary frame
// regardless of the request encoding, and the binary rows carry exactly
// the JSON rows (with group mirroring source, as documented).
func TestPredictBatchBinary(t *testing.T) {
	srv := newTestServer(t)

	batch := fmt.Sprintf(
		`[{"lat":%f,"lon":%f,"speed":4.5,"bearing":10},{"lat":%f,"lon":%f},{"lat":0,"lon":0}]`,
		testLat, testLon, testLat, testLon)
	resp, body := postJSON(t, srv.URL+"/predict/batch", batch)
	if resp.StatusCode != 200 {
		t.Fatalf("json batch: %d %s", resp.StatusCode, body)
	}
	var want []predictResponse
	if err := json.Unmarshal([]byte(body), &want); err != nil {
		t.Fatal(err)
	}

	sp, br := 4.5, 10.0
	qs := []wire.Query{
		{Lat: testLat, Lon: testLon, Speed: &sp, Bearing: &br},
		{Lat: testLat, Lon: testLon},
		{},
	}
	frame := wire.AppendQueries(nil, qs)

	// Binary in, binary out.
	resp, respFrame := postRaw(t, srv.URL+"/predict/batch", frame, wire.ContentType, wire.ContentType)
	if resp.StatusCode != 200 {
		t.Fatalf("binary batch: %d %s", resp.StatusCode, respFrame)
	}
	if ct := resp.Header.Get("Content-Type"); ct != wire.ContentType {
		t.Fatalf("binary batch Content-Type %q", ct)
	}
	rows, err := wire.DecodeResults(respFrame, maxBatchQueries)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(want) {
		t.Fatalf("binary batch returned %d rows for %d queries", len(rows), len(want))
	}
	for i, r := range rows {
		w := want[i]
		if w.Group != w.Source {
			t.Fatalf("row %d: JSON group %q != source %q — the wire format assumes they mirror", i, w.Group, w.Source)
		}
		if r.Mbps != w.Mbps || r.Class != w.Class || r.Source != w.Source ||
			r.Tier != w.Tier || r.Degraded != w.Degraded || !reflect.DeepEqual(r.Missing, w.Missing) {
			t.Fatalf("row %d: binary %+v != json %+v", i, r, w)
		}
	}

	// Binary in, JSON out (no Accept): byte-identical to the JSON path.
	resp, jsonBody := postRaw(t, srv.URL+"/predict/batch", frame, wire.ContentType, "")
	if resp.StatusCode != 200 {
		t.Fatalf("binary-in/json-out: %d %s", resp.StatusCode, jsonBody)
	}
	if string(jsonBody) != body {
		t.Fatalf("binary-in/json-out body diverged:\n%s\nvs\n%s", jsonBody, body)
	}

	// JSON in, binary out: byte-identical to the binary path.
	resp, frame2 := postRaw(t, srv.URL+"/predict/batch", []byte(batch), "application/json", wire.ContentType)
	if resp.StatusCode != 200 {
		t.Fatalf("json-in/binary-out: %d %s", resp.StatusCode, frame2)
	}
	if !bytes.Equal(frame2, respFrame) {
		t.Fatal("json-in/binary-out frame diverged from binary-in/binary-out")
	}

	// A corrupt binary frame is a 400, not a decode panic or a 500.
	resp, msg := postRaw(t, srv.URL+"/predict/batch", []byte("L5GBgarbage"), wire.ContentType, "")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("corrupt frame: want 400, got %d %s", resp.StatusCode, msg)
	}
}

// TestBatchMethodPolicy: POST is allowed only on /predict/batch; the
// rest of the service stays read-only.
func TestBatchMethodPolicy(t *testing.T) {
	srv := newTestServer(t)

	if resp, _ := postJSON(t, srv.URL+"/predict", `[]`); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /predict: want 405, got %d", resp.StatusCode)
	}
	if resp, _ := postJSON(t, srv.URL+"/healthz", `{}`); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /healthz: want 405, got %d", resp.StatusCode)
	}
	resp, err := http.Get(srv.URL + "/predict/batch")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /predict/batch: want 405, got %d", resp.StatusCode)
	}
	if allow := resp.Header.Get("Allow"); !strings.Contains(allow, "POST") {
		t.Fatalf("GET /predict/batch Allow header %q should advertise POST", allow)
	}
}

// TestPredictBatchModelless: a server without a model answers every
// batch element from the throughput map, like the single endpoint.
func TestPredictBatchModelless(t *testing.T) {
	tm, _ := setup(t)
	s, err := New(tm, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s)
	defer srv.Close()

	batch := fmt.Sprintf(`[{"lat":%f,"lon":%f},{"lat":0,"lon":0}]`, testLat, testLon)
	resp, body := postJSON(t, srv.URL+"/predict/batch", batch)
	if resp.StatusCode != 200 {
		t.Fatalf("modelless batch: %d %s", resp.StatusCode, body)
	}
	var got []predictResponse
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatal(err)
	}
	if got[0].Tier != -1 || got[0].Source != "map-cell" {
		t.Fatalf("in-map query should answer from its cell: %+v", got[0])
	}
	if got[1].Tier != -1 || got[1].Source != "map-mean" {
		t.Fatalf("off-map query should answer from the map mean: %+v", got[1])
	}
}
