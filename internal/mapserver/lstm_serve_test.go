package mapserver

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http/httptest"
	"testing"

	"lumos5g"
	"lumos5g/internal/engine"
	"lumos5g/internal/ml/nn"
)

// TestLSTMServesEndToEnd trains the recurrent model family and serves
// it through the whole stack — Train → ChainFromPredictor →
// NewWithChain → HTTP /predict — proving the compiled LSTM kernel is a
// first-class servable, not just a bench artifact. A full-sensor query
// must answer from the model tiers (tier >= 0), and a sensor-less query
// must demote through the same chain without error.
func TestLSTMServesEndToEnd(t *testing.T) {
	area, err := lumos5g.AreaByName("Airport")
	if err != nil {
		t.Fatal(err)
	}
	cfg := lumos5g.CampaignConfig{Seed: 1, WalkPasses: 3, BackgroundUEProb: 0.1}
	clean, _ := lumos5g.CleanDataset(lumos5g.GenerateArea(area, cfg))
	tm := lumos5g.BuildThroughputMap(clean, 2)
	sc := lumos5g.Scale{
		Seed:    1,
		Seq2Seq: nn.Seq2SeqConfig{Hidden: 8, Layers: 1, Epochs: 2, Batch: 64},
	}
	pred, err := lumos5g.Train(clean, lumos5g.GroupLM, lumos5g.ModelLSTM, sc)
	if err != nil {
		t.Fatal(err)
	}
	chain, err := lumos5g.ChainFromPredictor(pred, engine.MapMean(tm))
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewWithChain(tm, chain)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s)
	defer srv.Close()

	lat, lon := clean.Records[50].Latitude, clean.Records[50].Longitude
	resp, body := get(t, fmt.Sprintf("%s/predict?lat=%f&lon=%f&speed=4.5&bearing=10", srv.URL, lat, lon))
	if resp.StatusCode != 200 {
		t.Fatalf("full-sensor query: %d %s", resp.StatusCode, body)
	}
	var full predictResponse
	if err := json.Unmarshal([]byte(body), &full); err != nil {
		t.Fatal(err)
	}
	if full.Tier < 0 {
		t.Fatalf("full-sensor query fell past every LSTM tier: %+v", full)
	}
	if math.IsNaN(full.Mbps) || math.IsInf(full.Mbps, 0) || full.Mbps < 0 {
		t.Fatalf("LSTM served a bad throughput: %+v", full)
	}
	if full.Degraded {
		t.Fatalf("full-sensor query should not be degraded: %+v", full)
	}

	resp, body = get(t, fmt.Sprintf("%s/predict?lat=%f&lon=%f", srv.URL, lat, lon))
	if resp.StatusCode != 200 {
		t.Fatalf("sensor-less query: %d %s", resp.StatusCode, body)
	}
	var bare predictResponse
	if err := json.Unmarshal([]byte(body), &bare); err != nil {
		t.Fatal(err)
	}
	if !bare.Degraded {
		t.Fatalf("sensor-less query must demote and mark itself degraded: %+v", bare)
	}
	if math.IsNaN(bare.Mbps) || math.IsInf(bare.Mbps, 0) {
		t.Fatalf("demoted answer is non-finite: %+v", bare)
	}
}
