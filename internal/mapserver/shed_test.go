package mapserver

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// TestShedGate pins the overload-shedding contract at the middleware
// level, where saturation can be held deterministically: beyond the
// in-flight bound, work routes get an immediate 503 with a Retry-After
// hint and one onShed tick, exempt routes (health, metrics) still pass,
// and capacity freed by a finishing request is reusable.
func TestShedGate(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/block" {
			started <- struct{}{}
			<-release
		}
		w.WriteHeader(http.StatusOK)
	})
	var shed atomic.Int64
	h := withShed(inner, 2, shedExempt, func() { shed.Add(1) })
	srv := httptest.NewServer(h)
	defer srv.Close()

	// Occupy both in-flight slots with requests parked inside the handler.
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(srv.URL + "/block")
			if err == nil {
				resp.Body.Close()
			}
		}()
	}
	<-started
	<-started

	// A third work request must shed: 503, Retry-After, JSON error body.
	resp, body := get(t, srv.URL+"/predict")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated request: got %d, want 503 (body %q)", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After header")
	}
	if !strings.Contains(body, `"error"`) {
		t.Fatalf("shed body is not a JSON error: %q", body)
	}

	// Exempt probes must reach a saturated server — the fleet health
	// prober distinguishes busy from dead through exactly this gap.
	for _, path := range []string{"/healthz", "/metrics"} {
		if resp, _ := get(t, srv.URL+path); resp.StatusCode != http.StatusOK {
			t.Fatalf("exempt %s shed while saturated: %d", path, resp.StatusCode)
		}
	}

	if got := shed.Load(); got != 1 {
		t.Fatalf("onShed ticks: got %d, want 1", got)
	}

	// Capacity frees when the parked requests finish.
	close(release)
	wg.Wait()
	if resp, _ := get(t, srv.URL+"/predict"); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-saturation request: got %d, want 200", resp.StatusCode)
	}
	if got := shed.Load(); got != 1 {
		t.Fatalf("onShed ticked on a non-shed request: %d", got)
	}
}

// TestShedServerWiring runs real load through a Server built with
// WithMaxInFlight and audits the books: every /predict response is a
// 200 or a shed 503, and the 503 count equals lumos_shed_total exactly
// (the middleware stack has no other 503 source on this path).
func TestShedServerWiring(t *testing.T) {
	tm, pred := setup(t)
	s, err := New(tm, pred, WithMaxInFlight(1), WithPredictCacheSize(0))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s)
	defer srv.Close()

	const clients, perClient = 16, 8
	var ok, shed, other atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				url := fmt.Sprintf("%s/predict?lat=%f&lon=%f&speed=%d",
					srv.URL, testLat, testLon, c) // distinct speeds defeat coalescing
				resp, err := http.Get(url)
				if err != nil {
					other.Add(1)
					continue
				}
				switch resp.StatusCode {
				case http.StatusOK:
					ok.Add(1)
				case http.StatusServiceUnavailable:
					if resp.Header.Get("Retry-After") == "" {
						t.Error("503 without Retry-After")
					}
					shed.Add(1)
				default:
					other.Add(1)
				}
				resp.Body.Close()
			}
		}(c)
	}
	wg.Wait()

	if other.Load() != 0 {
		t.Fatalf("unexpected non-200/503 outcomes: %d", other.Load())
	}
	if ok.Load()+shed.Load() != clients*perClient {
		t.Fatalf("responses lost: %d ok + %d shed != %d", ok.Load(), shed.Load(), clients*perClient)
	}
	_, metrics := get(t, srv.URL+"/metrics")
	got, found := metricValue(metrics, "lumos_shed_total")
	if !found {
		t.Fatal("lumos_shed_total missing from /metrics")
	}
	if got != float64(shed.Load()) {
		t.Fatalf("lumos_shed_total = %v, want %d (observed 503s)", got, shed.Load())
	}
}
