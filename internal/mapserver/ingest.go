package mapserver

import (
	"net/http"
	"sync/atomic"

	"lumos5g/internal/ingest"
)

// POST /ingest wiring: the server always mounts the route so the
// method/size/shed middleware and route-labeled metrics cover it, but
// answers 404 until an Ingestor is attached. The ingest handler shares
// the predict path's shed gate (it is NOT exempt) — under overload the
// server sheds measurement uploads exactly like prediction work, and
// the bounded ingest queue behind the gate adds its own 429
// backpressure — but it never takes the engine lock, so a slow refit
// or a full queue cannot stall a single /predict.

// AttachIngestor wires ing into the server: POST /ingest starts
// admitting samples and /healthz grows an "ingest" section. Call once
// at startup (the pointer swap is atomic, so late attachment under
// traffic is safe too). Pass the server's own Metrics() registry to
// ingest.New so the counters land in this server's /metrics.
func (s *Server) AttachIngestor(ing *ingest.Ingestor) {
	s.ing.Store(ing)
}

// Ingestor returns the attached ingest pipeline, or nil.
func (s *Server) Ingestor() *ingest.Ingestor {
	return s.ing.Load()
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	ing := s.ing.Load()
	if ing == nil {
		writeError(w, http.StatusNotFound, "ingest not enabled on this server")
		return
	}
	ing.ServeHTTP(w, r)
}

// ingestHealth returns the /healthz ingest section, nil when disabled.
func (s *Server) ingestHealth() *ingest.Health {
	ing := s.ing.Load()
	if ing == nil {
		return nil
	}
	h := ing.Health()
	return &h
}

// ingPtr aliases the atomic holder so Server's struct literal zero
// value stays valid.
type ingPtr = atomic.Pointer[ingest.Ingestor]
