package mapserver

import (
	"context"
	"errors"
	"net"
	"net/http"
	"time"
)

// Serve runs h on ln until ctx is cancelled, then drains in-flight
// requests with a graceful Shutdown bounded by grace (<=0 means 5 s).
// It returns nil after a clean shutdown, or the first serve/shutdown
// error otherwise. The listener is owned by the caller until Serve
// starts; Serve closes it on return.
func Serve(ctx context.Context, ln net.Listener, h http.Handler, grace time.Duration) error {
	if grace <= 0 {
		grace = 5 * time.Second
	}
	srv := &http.Server{
		Handler: h,
		// Slow-client bounds: a UE on a collapsing link must not be able
		// to pin a connection open indefinitely.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       60 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	select {
	case err := <-errCh:
		// Listener failed before the context ended.
		return err
	case <-ctx.Done():
	}
	sctx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		srv.Close() // grace expired: tear down what remains
		return err
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// ListenAndServe binds addr and delegates to Serve.
func ListenAndServe(ctx context.Context, addr string, h http.Handler, grace time.Duration) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return Serve(ctx, ln, h, grace)
}
