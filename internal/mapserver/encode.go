package mapserver

import (
	"math"
	"strconv"
	"sync"
	"unicode/utf8"
)

// Hand-rolled JSON rendering of the /predict wire form. The byte output
// is pinned — by TestAppendPredictResponseMatchesStdlib — to be exactly
// what encoding/json produces for predictResponse (default HTML
// escaping included), so cached bodies, uncached recomputes and batch
// rows stay byte-identical with the historical wire format while
// skipping the reflection walk and per-call scratch of json.Marshal.

// jsonSafe marks the ASCII bytes encoding/json copies through verbatim
// inside a string (its htmlSafeSet): printable, minus the JSON escapes
// and the HTML-sensitive characters.
var jsonSafe = func() (s [utf8.RuneSelf]bool) {
	for b := 0x20; b < utf8.RuneSelf; b++ {
		s[b] = true
	}
	s['"'], s['\\'], s['<'], s['>'], s['&'] = false, false, false, false, false
	return
}()

const hexDigits = "0123456789abcdef"

// appendJSONString appends s as a JSON string literal with
// encoding/json's default escaping rules: control characters and
// <, >, & as \u00xx, the \n \r \t \" \\ shorthands, invalid UTF-8 as
// �, and the JS line separators U+2028/U+2029 escaped.
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); {
		if b := s[i]; b < utf8.RuneSelf {
			if jsonSafe[b] {
				i++
				continue
			}
			dst = append(dst, s[start:i]...)
			switch b {
			case '\\':
				dst = append(dst, '\\', '\\')
			case '"':
				dst = append(dst, '\\', '"')
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			default:
				dst = append(dst, '\\', 'u', '0', '0', hexDigits[b>>4], hexDigits[b&0xF])
			}
			i++
			start = i
			continue
		}
		c, size := utf8.DecodeRuneInString(s[i:])
		switch {
		case c == utf8.RuneError && size == 1:
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', 'f', 'f', 'f', 'd')
			i += size
			start = i
		case c == '\u2028' || c == '\u2029':
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', '2', '0', '2', hexDigits[c&0xF])
			i += size
			start = i
		default:
			i += size
		}
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}

// appendJSONFloat appends a finite float exactly as encoding/json does:
// shortest 'f' form in [1e-6, 1e21), otherwise 'e' with the exponent's
// leading zero stripped. The caller guarantees finiteness (wireSafe).
func appendJSONFloat(dst []byte, f float64) []byte {
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	dst = strconv.AppendFloat(dst, f, format, -1, 64)
	if format == 'e' {
		if n := len(dst); n >= 4 && dst[n-4] == 'e' && dst[n-3] == '-' && dst[n-2] == '0' {
			dst[n-2] = dst[n-1]
			dst = dst[:n-1]
		}
	}
	return dst
}

// appendPredictResponse appends one prediction object, byte-identical
// to json.Marshal of the struct (field order is the struct's).
func appendPredictResponse(dst []byte, r predictResponse) []byte {
	dst = append(dst, `{"mbps":`...)
	dst = appendJSONFloat(dst, r.Mbps)
	dst = append(dst, `,"class":`...)
	dst = appendJSONString(dst, r.Class)
	dst = append(dst, `,"group":`...)
	dst = appendJSONString(dst, r.Group)
	dst = append(dst, `,"source":`...)
	dst = appendJSONString(dst, r.Source)
	dst = append(dst, `,"tier":`...)
	dst = strconv.AppendInt(dst, int64(r.Tier), 10)
	dst = append(dst, `,"degraded":`...)
	dst = strconv.AppendBool(dst, r.Degraded)
	if len(r.Missing) > 0 {
		dst = append(dst, `,"missing":[`...)
		for i, m := range r.Missing {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = appendJSONString(dst, m)
		}
		dst = append(dst, ']')
	}
	return append(dst, '}')
}

// predictIntervalResponse is the /predict wire form when intervals are
// negotiated (?intervals=1): the point fields of predictResponse with
// the p10/p50/p90 band spliced in right after mbps. P50 always equals
// Mbps — it is repeated so clients reading only the triple see a
// complete quantile set. Kept as its own struct so the stdlib-parity
// test pins this encoder the same way the point form is pinned, and so
// interval-off responses keep the historical field set byte for byte.
type predictIntervalResponse struct {
	Mbps     float64  `json:"mbps"`
	P10      float64  `json:"p10"`
	P50      float64  `json:"p50"`
	P90      float64  `json:"p90"`
	Class    string   `json:"class"`
	Group    string   `json:"group"`
	Source   string   `json:"source"`
	Tier     int      `json:"tier"`
	Degraded bool     `json:"degraded"`
	Missing  []string `json:"missing,omitempty"`
}

// intervalResponse splices a band into the point wire form.
func intervalResponse(r predictResponse, bd band) predictIntervalResponse {
	return predictIntervalResponse{
		Mbps: r.Mbps, P10: bd.p10, P50: r.Mbps, P90: bd.p90,
		Class: r.Class, Group: r.Group, Source: r.Source,
		Tier: r.Tier, Degraded: r.Degraded, Missing: r.Missing,
	}
}

// appendPredictIntervalResponse appends one interval prediction object,
// byte-identical to json.Marshal of predictIntervalResponse.
func appendPredictIntervalResponse(dst []byte, r predictIntervalResponse) []byte {
	dst = append(dst, `{"mbps":`...)
	dst = appendJSONFloat(dst, r.Mbps)
	dst = append(dst, `,"p10":`...)
	dst = appendJSONFloat(dst, r.P10)
	dst = append(dst, `,"p50":`...)
	dst = appendJSONFloat(dst, r.P50)
	dst = append(dst, `,"p90":`...)
	dst = appendJSONFloat(dst, r.P90)
	dst = append(dst, `,"class":`...)
	dst = appendJSONString(dst, r.Class)
	dst = append(dst, `,"group":`...)
	dst = appendJSONString(dst, r.Group)
	dst = append(dst, `,"source":`...)
	dst = appendJSONString(dst, r.Source)
	dst = append(dst, `,"tier":`...)
	dst = strconv.AppendInt(dst, int64(r.Tier), 10)
	dst = append(dst, `,"degraded":`...)
	dst = strconv.AppendBool(dst, r.Degraded)
	if len(r.Missing) > 0 {
		dst = append(dst, `,"missing":[`...)
		for i, m := range r.Missing {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = appendJSONString(dst, m)
		}
		dst = append(dst, ']')
	}
	return append(dst, '}')
}

// batchBufPool recycles the response-staging buffers of the batch
// paths (JSON array bodies and binary frames).
var batchBufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 4096)
	return &b
}}
