package mapserver

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
)

// TestAppendPredictResponseMatchesStdlib pins the hand-rolled wire
// encoder to encoding/json byte for byte: every float form the
// standard library special-cases, every string escape class (JSON
// escapes, HTML escaping, invalid UTF-8, U+2028/U+2029), and the
// omitempty boundary of the missing list.
func TestAppendPredictResponseMatchesStdlib(t *testing.T) {
	floats := []float64{
		0, math.Copysign(0, -1), 1, -1, 123.456, -981.25, 0.125,
		1e-6, 9.999e-7, 1e-7, 5e-324, 1e21, 1e20 * 9.999, -1e21, 2.5e30,
		math.MaxFloat64, -math.MaxFloat64, 1234.000244140625, 888.125,
		1e-21, 3.14159265358979, 7e+100,
	}
	strs := []string{
		"", "L+M", "map-cell", "gbdt-l+m", "plain ascii",
		"quote\"back\\slash", "tab\tnew\nret\r", "ctl\x01\x1f",
		"html<&>", "uni\u00e9\u4e16\u754c", "bad\xffutf8", "trunc\xc3",
		"sep\u2028and\u2029end", "emoji\U0001F600",
	}
	missing := [][]string{nil, {}, {"speed"}, {"speed", "bearing"}, {"we<ird&"}}
	var i int
	for _, f := range floats {
		for _, s := range strs {
			resp := predictResponse{
				Mbps:     f,
				Class:    s,
				Group:    strs[i%len(strs)],
				Source:   strs[(i+3)%len(strs)],
				Tier:     i%5 - 1,
				Degraded: i%2 == 0,
				Missing:  missing[i%len(missing)],
			}
			i++
			want, err := json.Marshal(resp)
			if err != nil {
				t.Fatal(err)
			}
			got := appendPredictResponse(nil, resp)
			if !bytes.Equal(got, want) {
				t.Fatalf("encoder diverges for %+v:\n got %s\nwant %s", resp, got, want)
			}
		}
	}
}

// TestMarshalResponseMatchesEncoder pins the cached wire body to what
// json.Encoder.Encode would emit (trailing newline included): the
// byte-identity contract between cached hits, uncached recomputes and
// the pre-cache wire format.
func TestMarshalResponseMatchesEncoder(t *testing.T) {
	resp := predictResponse{Mbps: 432.1875, Class: "High", Group: "L+M", Source: "L+M", Tier: 0}
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(resp); err != nil {
		t.Fatal(err)
	}
	if got := marshalResponse(resp); !bytes.Equal(got, buf.Bytes()) {
		t.Fatalf("marshalResponse %q != json.Encoder %q", got, buf.Bytes())
	}
}

// TestBatchBodyMatchesStdlib pins the batch array rendering to
// json.Encoder of []predictResponse.
func TestBatchBodyMatchesStdlib(t *testing.T) {
	out := []predictResponse{
		{Mbps: 100.5, Class: "Low", Group: "L", Source: "L", Tier: 1},
		{Mbps: 901.25, Class: "High", Group: "L+M", Source: "L+M", Tier: 0, Degraded: true, Missing: []string{"speed"}},
	}
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(out); err != nil {
		t.Fatal(err)
	}
	b := []byte{'['}
	for i := range out {
		if i > 0 {
			b = append(b, ',')
		}
		b = appendPredictResponse(b, out[i])
	}
	b = append(b, ']', '\n')
	if !bytes.Equal(b, buf.Bytes()) {
		t.Fatalf("batch body %q != json.Encoder %q", b, buf.Bytes())
	}
}
