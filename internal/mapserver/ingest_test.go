package mapserver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lumos5g"
	"lumos5g/internal/ingest"
	"lumos5g/internal/obs"
	"lumos5g/internal/sim"
)

func TestIngestDisabledReturns404(t *testing.T) {
	srv := newTestServer(t)
	resp, err := http.Post(srv.URL+"/ingest", "application/json", strings.NewReader(`[]`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("ingest without an ingestor: %d, want 404", resp.StatusCode)
	}
	_, body := get(t, srv.URL+"/healthz")
	if strings.Contains(body, `"ingest"`) {
		t.Fatal("healthz grew an ingest section with no ingestor attached")
	}
}

// hammerPredict drives /predict from several goroutines until stop is
// closed, counting requests and failures — every response must be a
// valid 200 prediction no matter what the refit loop is doing.
func hammerPredict(t *testing.T, s *Server, stop <-chan struct{}) (*sync.WaitGroup, *atomic.Int64, *atomic.Int64) {
	t.Helper()
	var wg sync.WaitGroup
	var total, failed atomic.Int64
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				url := fmt.Sprintf("/predict?lat=%f&lon=%f", testLat, testLon)
				if i%2 == 0 {
					url += "&speed=4&bearing=10"
				}
				rr := httptest.NewRecorder()
				s.ServeHTTP(rr, httptest.NewRequest("GET", url, nil))
				total.Add(1)
				var pr predictResponse
				if rr.Code != 200 || json.Unmarshal(rr.Body.Bytes(), &pr) != nil {
					failed.Add(1)
					t.Errorf("predict during ingest loop: %d %s", rr.Code, rr.Body.String())
					return
				}
			}
		}(g)
	}
	return &wg, &total, &failed
}

// TestIngestEndToEndLoop closes the measure→train→serve loop against a
// live server: a simulated UE fleet streams a campaign into POST
// /ingest, the refit loop drains it into the window and retrains, and
// the first generation hot-swaps into a server that booted with no
// model — all while /predict traffic runs uninterrupted with zero
// failures (run under -race; `make tier1` does).
func TestIngestEndToEndLoop(t *testing.T) {
	tm, _ := setup(t)
	s, err := NewWithChain(tm, nil) // cold start: no model, map-only answers
	if err != nil {
		t.Fatal(err)
	}
	ing := ingest.New(s.Metrics(), ingest.Config{
		QueueSize: 8192,
		Refit: ingest.RefitConfig{
			Interval:      25 * time.Millisecond,
			DrainInterval: 5 * time.Millisecond,
			MinSamples:    200,
			Seed:          3,
		},
	})
	s.AttachIngestor(ing)
	stopRefit := ing.Start(s, nil)
	defer stopRefit()

	srv := httptest.NewServer(s)
	defer srv.Close()

	stop := make(chan struct{})
	wg, total, failed := hammerPredict(t, s, stop)

	// The simulated fleet uploads the campaign in measurement order.
	area, err := lumos5g.AreaByName("Airport")
	if err != nil {
		t.Fatal(err)
	}
	clean, _ := lumos5g.CleanDataset(lumos5g.GenerateArea(area, lumos5g.CampaignConfig{Seed: 1, WalkPasses: 3, BackgroundUEProb: 0.1}))
	accepted := 0
	err = sim.StreamBatches(clean, 128, func(recs []lumos5g.Record) error {
		batch := make([]ingest.Sample, len(recs))
		for i := range recs {
			batch[i] = ingest.SampleFromRecord(&recs[i])
		}
		body, err := json.Marshal(batch)
		if err != nil {
			return err
		}
		resp, err := http.Post(srv.URL+"/ingest", "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			return fmt.Errorf("ingest batch: status %d", resp.StatusCode)
		}
		var res ingest.BatchResult
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			return err
		}
		accepted += res.Accepted
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if accepted < 200 {
		t.Fatalf("fleet upload admitted only %d samples", accepted)
	}

	// The loop must train and swap a first generation in: live model is
	// nil, so any finite candidate passes the gate.
	deadline := time.Now().Add(30 * time.Second)
	for ing.Health().RefitsAccepted == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("refit loop never promoted a model: health %+v", ing.Health())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if s.Chain() == nil {
		t.Fatal("accepted refit did not install a chain")
	}

	close(stop)
	wg.Wait()
	if f := failed.Load(); f != 0 {
		t.Fatalf("%d of %d predict queries failed during the ingest loop", f, total.Load())
	}
	if total.Load() == 0 {
		t.Fatal("predict hammer did not run")
	}

	// The loop's state is visible end to end: /healthz carries the
	// ingest section with the same counts the ingestor reports, and
	// /metrics exports the ingest and drift instruments.
	_, body := get(t, srv.URL+"/healthz")
	var h healthJSON
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatal(err)
	}
	if h.Ingest == nil {
		t.Fatal("healthz has no ingest section")
	}
	if h.Ingest.Accepted != uint64(accepted) {
		t.Fatalf("healthz accepted %d != fleet-observed %d", h.Ingest.Accepted, accepted)
	}
	if h.Ingest.WindowSamples == 0 || h.Ingest.RefitsAccepted == 0 {
		t.Fatalf("ingest health: %+v", h.Ingest)
	}
	_, body = get(t, srv.URL+"/metrics")
	for _, metric := range []string{
		"lumos_ingest_accepted_total", "lumos_ingest_window_samples",
		"lumos_refit_accepted_total", "lumos_refit_live_holdout_mae_mbps",
		"lumos_refit_candidate_holdout_mae_mbps",
	} {
		if !strings.Contains(body, metric) {
			t.Errorf("/metrics missing %s", metric)
		}
	}
}

// TestIngestRegressingRefitRollsBackUnderLoad is satellite 3: a refit
// that produces a deliberately regressing candidate mid-traffic must be
// gate-rejected while the old generation serves every concurrent query
// — zero non-200s — and the rejection is counted.
func TestIngestRegressingRefitRollsBackUnderLoad(t *testing.T) {
	tm, _ := setup(t)
	live := trainedChain(t)
	s, err := NewWithChain(tm, live)
	if err != nil {
		t.Fatal(err)
	}
	bad, err := lumos5g.NewFallbackChain(1e6) // constant absurd prediction
	if err != nil {
		t.Fatal(err)
	}
	ing := ingest.New(obs.NewRegistry(), ingest.Config{
		QueueSize: 8192,
		Refit: ingest.RefitConfig{
			MinSamples: 100,
			Seed:       11,
			Train: func(*lumos5g.Dataset, []lumos5g.FeatureGroup, lumos5g.Model, lumos5g.Scale) (*lumos5g.FallbackChain, error) {
				return bad, nil
			},
		},
	})
	s.AttachIngestor(ing)

	area, err := lumos5g.AreaByName("Airport")
	if err != nil {
		t.Fatal(err)
	}
	clean, _ := lumos5g.CleanDataset(lumos5g.GenerateArea(area, lumos5g.CampaignConfig{Seed: 1, WalkPasses: 3}))
	for i := range clean.Records {
		ing.Ingest([]ingest.Sample{ingest.SampleFromRecord(&clean.Records[i])})
		if i%512 == 0 {
			ing.Drain()
		}
	}

	stop := make(chan struct{})
	wg, total, failed := hammerPredict(t, s, stop)

	// Several refit cycles mid-traffic: every one must be rejected by
	// the holdout gate with the live generation untouched.
	for i := 0; i < 3; i++ {
		res, err := ing.RefitNow(s)
		if err == nil || res.Swapped || res.Skipped {
			t.Fatalf("regressing refit %d: res=%+v err=%v, want gate rejection", i, res, err)
		}
		if res.Reason != "gate" {
			t.Fatalf("refit %d reason %q, want gate", i, res.Reason)
		}
	}
	close(stop)
	wg.Wait()

	if s.Chain() != live {
		t.Fatal("regressing refit replaced the live chain")
	}
	if f := failed.Load(); f != 0 {
		t.Fatalf("%d of %d queries failed during rejected refits", f, total.Load())
	}
	if n := ing.Health().RefitsRejected; n != 3 {
		t.Fatalf("refits_rejected = %d, want 3", n)
	}
	if ing.Health().LastRefitError == "" {
		t.Fatal("rejection not surfaced in ingest health")
	}
}
