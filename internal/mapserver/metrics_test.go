package mapserver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"lumos5g/internal/core"
	"lumos5g/internal/engine"
	"lumos5g/internal/geo"
)

// metricValue extracts one series value from a Prometheus text
// exposition; ok is false when the series is absent.
func metricValue(exposition, series string) (float64, bool) {
	for _, line := range strings.Split(exposition, "\n") {
		if rest, found := strings.CutPrefix(line, series+" "); found {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				return 0, false
			}
			return v, true
		}
	}
	return 0, false
}

// sumSeries sums every series whose name+labels start with prefix.
func sumSeries(exposition, prefix string) float64 {
	var total float64
	for _, line := range strings.Split(exposition, "\n") {
		if !strings.HasPrefix(line, prefix) {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err == nil {
			total += v
		}
	}
	return total
}

// TestMetricsInvariantUnderConcurrentLoad is the acceptance test for
// the counting design: after hammering /predict from many goroutines
// (mixed cache hits and misses across distinct quantized keys), the
// exact audit identity
//
//	requests{route=/predict,code=200} = Σ tier_served{route=/predict}
//	                                  + cache_hits + cache_uncached
//
// must hold on /metrics, and /healthz — which reads the same registry —
// must agree number for number.
func TestMetricsInvariantUnderConcurrentLoad(t *testing.T) {
	tm, _ := setup(t)
	s, err := NewWithChain(tm, trainedChain(t))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s)
	defer srv.Close()

	const workers, perWorker = 8, 50
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				// ~20 distinct quantized keys → a mix of misses and hits.
				url := fmt.Sprintf("%s/predict?lat=%f&lon=%f&speed=%d&bearing=10",
					srv.URL, testLat, testLon, (g*perWorker+i)%20)
				resp, body := get(t, url)
				if resp.StatusCode != 200 {
					t.Errorf("predict: %d %s", resp.StatusCode, body)
					return
				}
				if i%10 == 0 {
					get(t, srv.URL+"/healthz")
				}
			}
		}(g)
	}
	wg.Wait()

	resp, exposition := get(t, srv.URL+"/metrics")
	if resp.StatusCode != 200 {
		t.Fatalf("/metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type: %q", ct)
	}

	requests200, ok := metricValue(exposition, `lumos_http_requests_total{route="/predict",code="200"}`)
	if !ok || requests200 != workers*perWorker {
		t.Fatalf("requests counter: %v (ok=%v), want %d", requests200, ok, workers*perWorker)
	}
	served := sumSeries(exposition, `lumos_predict_tier_served_total{route="/predict",`)
	hits, _ := metricValue(exposition, "lumos_predict_cache_hits_total")
	uncached, _ := metricValue(exposition, "lumos_predict_cache_uncached_total")
	if served+hits+uncached != requests200 {
		t.Fatalf("invariant broken: served %v + hits %v + uncached %v != responses %v",
			served, hits, uncached, requests200)
	}
	// The per-route latency histogram saw every request.
	histCount, _ := metricValue(exposition, `lumos_http_request_duration_seconds_count{route="/predict"}`)
	if histCount != requests200 {
		t.Fatalf("latency histogram count %v vs requests %v", histCount, requests200)
	}

	// /healthz reads the same instruments: number-for-number agreement.
	var h healthJSON
	_, hb := get(t, srv.URL+"/healthz")
	if err := json.Unmarshal([]byte(hb), &h); err != nil {
		t.Fatal(err)
	}
	misses, _ := metricValue(exposition, "lumos_predict_cache_misses_total")
	if float64(h.CacheHits) != hits || float64(h.CacheMisses) != misses || float64(h.CacheUncached) != uncached {
		t.Fatalf("healthz/metrics drift: %+v vs hits %v misses %v uncached %v", h, hits, misses, uncached)
	}
	var healthServed uint64
	for _, n := range h.TiersServed {
		healthServed += n
	}
	if float64(healthServed) != served {
		t.Fatalf("healthz tiers_served %v vs metrics %v", healthServed, served)
	}

	// The quantile accessor answers from the same histogram.
	if p50 := s.RouteLatencyQuantile("/predict", 0.5); math.IsNaN(p50) || p50 < 0 {
		t.Fatalf("p50: %v", p50)
	}
	if p99 := s.RouteLatencyQuantile("/predict", 0.99); p99 < s.RouteLatencyQuantile("/predict", 0.5) {
		t.Fatalf("p99 below p50")
	}
}

// TestTimeoutResponseWireShape pins the fix for the expiry body: the
// 503 the timeout layer writes must carry the JSON content type and the
// newline-terminated error shape every other response has.
func TestTimeoutResponseWireShape(t *testing.T) {
	tm, pred := setup(t)
	s, err := New(tm, pred, WithRequestTimeout(30*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	s.mux.HandleFunc("/slow", func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
		case <-time.After(5 * time.Second):
		}
	})
	srv := httptest.NewServer(s)
	defer srv.Close()

	resp, body := get(t, srv.URL+"/slow")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("want 503, got %d (%s)", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("timeout content type: %q", ct)
	}
	if body != `{"error":"request timed out"}`+"\n" {
		t.Fatalf("timeout body: %q", body)
	}
	var e apiError
	if err := json.Unmarshal([]byte(body), &e); err != nil || e.Error == "" {
		t.Fatalf("timeout body is not the structured error shape: %q", body)
	}

	// The preset JSON content type must not leak onto non-JSON routes
	// that finish in time.
	resp, _ = get(t, srv.URL+"/map.svg")
	if ct := resp.Header.Get("Content-Type"); ct != "image/svg+xml" {
		t.Fatalf("svg content type clobbered: %q", ct)
	}
}

// TestPredictEmptyMapStaysFinite is the regression for the non-finite
// audit: a server over an empty map must answer 200 with the 1 Mbps
// floor prior, not NaN (and certainly not a marshal panic).
func TestPredictEmptyMapStaysFinite(t *testing.T) {
	tm := &core.ThroughputMap{Cells: map[geo.GridKey]*core.MapCell{}, MinSamples: 1}
	s, err := NewWithChain(tm, nil)
	if err != nil {
		t.Fatal(err)
	}
	rr := httptest.NewRecorder()
	s.ServeHTTP(rr, httptest.NewRequest("GET", "/predict?lat=45&lon=7", nil))
	if rr.Code != 200 {
		t.Fatalf("empty map predict: %d %s", rr.Code, rr.Body.String())
	}
	var pr predictResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Mbps != 1 || pr.Source != "map-mean" {
		t.Fatalf("empty map answer: %+v", pr)
	}
}

// TestPredictInfCellFallsToPrior: a degenerate cell whose mean is +Inf
// (hostile or corrupted map artifact) must neither reach the wire nor
// poison the map-wide prior.
func TestPredictInfCellFallsToPrior(t *testing.T) {
	px := geo.Pixelize(geo.LatLon{Lat: 45, Lon: 7}, geo.DefaultZoom)
	key := geo.GridKey{Col: px.X / 2, Row: px.Y / 2}
	tm := &core.ThroughputMap{
		Cells:      map[geo.GridKey]*core.MapCell{key: {Key: key, MeanMbps: math.Inf(1), N: 3}},
		MinSamples: 1,
	}
	if m := engine.MapMean(tm); math.IsInf(m, 0) || math.IsNaN(m) {
		t.Fatalf("map prior must stay finite: %v", m)
	}
	s, err := NewWithChain(tm, nil)
	if err != nil {
		t.Fatal(err)
	}
	rr := httptest.NewRecorder()
	s.ServeHTTP(rr, httptest.NewRequest("GET", "/predict?lat=45&lon=7", nil))
	if rr.Code != 200 {
		t.Fatalf("inf-cell predict: %d %s", rr.Code, rr.Body.String())
	}
	var pr predictResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Source != "map-mean" || math.IsInf(pr.Mbps, 0) || math.IsNaN(pr.Mbps) {
		t.Fatalf("inf cell served: %+v", pr)
	}
}

// TestRequestLogging checks the structured log path: one JSON line per
// request, the X-Request-Id echoed to the client matching the line's
// id, and the predict annotations (tier/source/cache) present.
func TestRequestLogging(t *testing.T) {
	tm, _ := setup(t)
	var buf bytes.Buffer
	s, err := NewWithChain(tm, nil, WithRequestLog(&buf))
	if err != nil {
		t.Fatal(err)
	}
	url := fmt.Sprintf("/predict?lat=%f&lon=%f", testLat, testLon)
	rr := httptest.NewRecorder()
	s.ServeHTTP(rr, httptest.NewRequest("GET", url, nil))
	if rr.Code != 200 {
		t.Fatalf("predict: %d", rr.Code)
	}
	id := rr.Header().Get("X-Request-Id")
	if id == "" {
		t.Fatal("X-Request-Id missing")
	}
	rr2 := httptest.NewRecorder()
	s.ServeHTTP(rr2, httptest.NewRequest("GET", "/healthz", nil))
	if id2 := rr2.Header().Get("X-Request-Id"); id2 == "" || id2 == id {
		t.Fatalf("request IDs must be unique: %q vs %q", id, id2)
	}

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 log lines, got %d: %q", len(lines), buf.String())
	}
	var line accessLogLine
	if err := json.Unmarshal([]byte(lines[0]), &line); err != nil {
		t.Fatalf("log line not JSON: %v %q", err, lines[0])
	}
	if line.ID != id || line.Method != "GET" || line.Path != "/predict" || line.Status != 200 {
		t.Fatalf("log line: %+v", line)
	}
	if line.Tier == nil || *line.Tier != -1 || line.Source != "map-cell" || line.Cache != "off" {
		t.Fatalf("predict annotations: %+v", line)
	}
	if line.Bytes <= 0 || line.DurMS < 0 || line.Time == "" {
		t.Fatalf("log line bookkeeping: %+v", line)
	}
	var health accessLogLine
	if err := json.Unmarshal([]byte(lines[1]), &health); err != nil {
		t.Fatal(err)
	}
	if health.Path != "/healthz" || health.Tier != nil {
		t.Fatalf("healthz log line: %+v", health)
	}
}

// TestMetricsRouteToggle: WithMetricsRoute(false) unmounts the
// exposition route but keeps the registry (and /healthz) live.
func TestMetricsRouteToggle(t *testing.T) {
	tm, _ := setup(t)
	s, err := NewWithChain(tm, nil, WithMetricsRoute(false))
	if err != nil {
		t.Fatal(err)
	}
	rr := httptest.NewRecorder()
	s.ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if rr.Code != http.StatusNotFound {
		t.Fatalf("disabled /metrics: %d", rr.Code)
	}
	if s.Metrics() == nil {
		t.Fatal("registry must exist regardless of the route")
	}
	rr = httptest.NewRecorder()
	s.ServeHTTP(rr, httptest.NewRequest("GET", "/healthz", nil))
	if rr.Code != 200 {
		t.Fatalf("healthz: %d", rr.Code)
	}
}

// TestErrorStatusesCounted: withObs sees the status the client saw,
// including errors from the middleware layers beneath it.
func TestErrorStatusesCounted(t *testing.T) {
	tm, _ := setup(t)
	s, err := NewWithChain(tm, nil)
	if err != nil {
		t.Fatal(err)
	}
	rr := httptest.NewRecorder()
	s.ServeHTTP(rr, httptest.NewRequest("GET", "/predict?lat=999&lon=0", nil))
	if rr.Code != 400 {
		t.Fatalf("bad query: %d", rr.Code)
	}
	rr = httptest.NewRecorder()
	s.ServeHTTP(rr, httptest.NewRequest("DELETE", "/predict", nil))
	if rr.Code != http.StatusMethodNotAllowed {
		t.Fatalf("method: %d", rr.Code)
	}
	var b strings.Builder
	if err := s.Metrics().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if v, ok := metricValue(out, `lumos_http_requests_total{route="/predict",code="400"}`); !ok || v != 1 {
		t.Fatalf("400 count: %v %v\n%s", v, ok, out)
	}
	if v, ok := metricValue(out, `lumos_http_requests_total{route="/predict",code="405"}`); !ok || v != 1 {
		t.Fatalf("405 count: %v %v", v, ok)
	}
}
