package mapserver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"

	"lumos5g"
	"lumos5g/internal/geo"
)

func TestQuantizeKey(t *testing.T) {
	px := geo.Pixel{X: 100, Y: 201}
	k := quantizeKey(px, nil, nil)
	if k != (predKey{col: 50, row: 100, speedB: -1, bearingB: -1}) {
		t.Fatalf("bare key: %+v", k)
	}
	// Neighbouring pixels in the same 2 m map cell share a key.
	if quantizeKey(geo.Pixel{X: 101, Y: 200}, nil, nil) != k {
		t.Fatal("same-cell pixels must share a key")
	}
	sp, b := 3.7, -10.0
	k = quantizeKey(px, &sp, &b)
	if k.speedB != 3 {
		t.Fatalf("speed bucket: %d", k.speedB)
	}
	if k.bearingB != 15 { // -10° wraps to 350°, the last 22.5° sector
		t.Fatalf("wrapped bearing sector: %d", k.bearingB)
	}
	north := 0.0
	if k := quantizeKey(px, nil, &north); k.bearingB != 0 || k.speedB != -1 {
		t.Fatalf("north, no speed: %+v", k)
	}
	// "speed 0" and "no speed" are served by different tiers and must not
	// share a cache entry.
	zero := 0.0
	if quantizeKey(px, &zero, nil) == quantizeKey(px, nil, nil) {
		t.Fatal("speed 0 must differ from absent speed")
	}
}

func TestPredCacheLRUAndCounters(t *testing.T) {
	var stats cacheStats
	c := newPredCache(2, &stats)
	mk := func(i int) predKey { return predKey{col: int32(i)} }
	val := func(i int) func() predictResponse {
		return func() predictResponse { return predictResponse{Mbps: float64(i)} }
	}
	if r, _ := c.getOrCompute(mk(1), val(1)); r.Mbps != 1 {
		t.Fatalf("miss compute: %+v", r)
	}
	c.getOrCompute(mk(2), val(2))
	// Hit on 1 refreshes its recency, so inserting 3 must evict 2.
	c.getOrCompute(mk(1), func() predictResponse {
		t.Error("hit must not compute")
		return predictResponse{}
	})
	c.getOrCompute(mk(3), val(3))
	if got := stats.evictions.Load(); got != 1 {
		t.Fatalf("evictions after first overflow: %d", got)
	}
	recomputed := false
	c.getOrCompute(mk(2), func() predictResponse { recomputed = true; return predictResponse{} })
	if !recomputed {
		t.Fatal("LRU evicted the wrong entry (2 should have been dropped)")
	}
	// Re-inserting 2 pushed the store over capacity again, evicting the
	// then-oldest entry (1); 3 must have survived as the other resident.
	c.getOrCompute(mk(3), func() predictResponse {
		t.Error("3 must have survived the eviction")
		return predictResponse{}
	})
	if h, m, e := stats.hits.Load(), stats.misses.Load(), stats.evictions.Load(); h != 2 || m != 4 || e != 2 {
		t.Fatalf("hits %d misses %d evictions %d", h, m, e)
	}
	if c.size() != 2 {
		t.Fatalf("size: %d", c.size())
	}
	// Disabled cache is represented as nil, not a zero-capacity store.
	if newPredCache(0, &stats) != nil {
		t.Fatal("capacity 0 must disable the cache")
	}
}

// TestPredCacheSingleflight holds the leader mid-compute and proves that
// followers on the same key never run their compute function: once the
// leader's pending entry is in the map (guaranteed before `started`
// closes), every later arrival blocks on it.
func TestPredCacheSingleflight(t *testing.T) {
	var stats cacheStats
	c := newPredCache(8, &stats)
	key := predKey{col: 1, row: 2, speedB: 3, bearingB: 4}
	started := make(chan struct{})
	release := make(chan struct{})
	var leaderBody []byte
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, leaderBody = c.getOrCompute(key, func() predictResponse {
			close(started)
			<-release
			return predictResponse{Mbps: 42, Source: "L"}
		})
	}()
	<-started

	const followers = 8
	bodies := make([][]byte, followers)
	var fwg sync.WaitGroup
	for i := 0; i < followers; i++ {
		fwg.Add(1)
		go func(i int) {
			defer fwg.Done()
			_, bodies[i] = c.getOrCompute(key, func() predictResponse {
				t.Error("follower compute ran — singleflight broken")
				return predictResponse{}
			})
		}(i)
	}
	close(release)
	wg.Wait()
	fwg.Wait()
	for i, b := range bodies {
		if !bytes.Equal(b, leaderBody) {
			t.Fatalf("follower %d body differs: %s vs %s", i, b, leaderBody)
		}
	}
	if h, m := stats.hits.Load(), stats.misses.Load(); h != followers || m != 1 {
		t.Fatalf("hits %d misses %d", h, m)
	}
}

func TestPredCacheLeaderPanicRecovers(t *testing.T) {
	var stats cacheStats
	c := newPredCache(8, &stats)
	key := predKey{col: 9}
	func() {
		defer func() { _ = recover() }()
		c.getOrCompute(key, func() predictResponse { panic("model exploded") })
	}()
	if c.size() != 0 {
		t.Fatal("abandoned entry must be removed")
	}
	// The key is computable again — no wedged pending entry.
	r, body := c.getOrCompute(key, func() predictResponse { return predictResponse{Mbps: 7} })
	if r.Mbps != 7 || len(body) == 0 {
		t.Fatalf("recompute after panic: %+v %q", r, body)
	}
}

func TestPredictCacheHitsAndHealth(t *testing.T) {
	tm, _ := setup(t)
	s, err := NewWithChain(tm, trainedChain(t))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s)
	defer srv.Close()

	url := fmt.Sprintf("%s/predict?lat=%f&lon=%f&speed=4&bearing=10", srv.URL, testLat, testLon)
	_, body1 := get(t, url)
	_, body2 := get(t, url)
	if body1 != body2 {
		t.Fatalf("cached body differs:\n%s\n%s", body1, body2)
	}

	var h healthJSON
	_, hb := get(t, srv.URL+"/healthz")
	if err := json.Unmarshal([]byte(hb), &h); err != nil {
		t.Fatal(err)
	}
	if h.CacheHits != 1 || h.CacheMisses != 1 || h.CacheEntries != 1 {
		t.Fatalf("cache counters: %+v", h)
	}
	// The hit answered without a model walk: tier counters see one query,
	// and the audit identity responses = Σ tiers_served + cache_hits holds.
	var served uint64
	for _, n := range h.TiersServed {
		served += n
	}
	if served != 1 || served+h.CacheHits != 2 {
		t.Fatalf("tiers_served %v with %d hits", h.TiersServed, h.CacheHits)
	}

	// A model swap empties the cache but keeps the lifetime counters.
	s.SetChain(s.Chain())
	_, hb = get(t, srv.URL+"/healthz")
	if err := json.Unmarshal([]byte(hb), &h); err != nil {
		t.Fatal(err)
	}
	if h.CacheEntries != 0 || h.CacheHits != 1 {
		t.Fatalf("after swap: %+v", h)
	}
	// The same query now recomputes on the fresh cache.
	if _, body3 := get(t, url); body3 != body1 {
		t.Fatalf("same model after swap must answer identically:\n%s\n%s", body3, body1)
	}
	_, hb = get(t, srv.URL+"/healthz")
	if err := json.Unmarshal([]byte(hb), &h); err != nil {
		t.Fatal(err)
	}
	if h.CacheMisses != 2 || h.CacheEntries != 1 {
		t.Fatalf("post-swap recompute: %+v", h)
	}
}

func TestPredictCacheDisabled(t *testing.T) {
	tm, _ := setup(t)
	s, err := NewWithChain(tm, trainedChain(t), WithPredictCacheSize(0))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s)
	defer srv.Close()
	url := fmt.Sprintf("%s/predict?lat=%f&lon=%f&speed=4&bearing=10", srv.URL, testLat, testLon)
	_, body1 := get(t, url)
	_, body2 := get(t, url)
	if body1 != body2 {
		t.Fatal("uncached answers must still be deterministic")
	}
	var h healthJSON
	_, hb := get(t, srv.URL+"/healthz")
	if err := json.Unmarshal([]byte(hb), &h); err != nil {
		t.Fatal(err)
	}
	if h.CacheHits != 0 || h.CacheMisses != 0 || h.CacheEntries != 0 {
		t.Fatalf("disabled cache counted: %+v", h)
	}
}

// TestCacheCoherentUnderConcurrentReload is the hot-swap coherence test:
// goroutines hammer one cached /predict query while the model is
// concurrently reloaded between two chains with different tier shapes.
// Because the cache is swapped in the same critical section as the
// chain, a query issued after a reload returns must always be answered
// by the new chain's tier — never a stale cached tier from the old one.
// Run under -race (`make tier1` does).
func TestCacheCoherentUnderConcurrentReload(t *testing.T) {
	tm, predLM := setup(t)
	area, err := lumos5g.AreaByName("Airport")
	if err != nil {
		t.Fatal(err)
	}
	cfg := lumos5g.CampaignConfig{Seed: 1, WalkPasses: 3, BackgroundUEProb: 0.1}
	clean, _ := lumos5g.CleanDataset(lumos5g.GenerateArea(area, cfg))
	predL, err := lumos5g.Train(clean, lumos5g.GroupL, lumos5g.ModelGDBT, lumos5g.Scale{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Chain A serves a full query from its L+M tier; chain B has no L+M
	// tier at all, so the same query is served by L. The serving tier's
	// Source is therefore a fingerprint of which model generation answered.
	chainA, err := lumos5g.NewFallbackChain(250, predLM, predL)
	if err != nil {
		t.Fatal(err)
	}
	chainB, err := lumos5g.NewFallbackChain(250, predL)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	pathA := filepath.Join(dir, "a.l5g")
	pathB := filepath.Join(dir, "b.l5g")
	if err := chainA.SaveFile(pathA); err != nil {
		t.Fatal(err)
	}
	if err := chainB.SaveFile(pathB); err != nil {
		t.Fatal(err)
	}

	s, err := NewWithChain(tm, chainA)
	if err != nil {
		t.Fatal(err)
	}
	query := fmt.Sprintf("/predict?lat=%f&lon=%f&speed=4&bearing=10", testLat, testLon)
	ask := func() predictResponse {
		rr := httptest.NewRecorder()
		s.ServeHTTP(rr, httptest.NewRequest("GET", query, nil))
		if rr.Code != 200 {
			t.Errorf("predict: %d %s", rr.Code, rr.Body.String())
		}
		var pr predictResponse
		if err := json.Unmarshal(rr.Body.Bytes(), &pr); err != nil {
			t.Errorf("bad body: %v %s", err, rr.Body.String())
		}
		return pr
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Hammer goroutines race the swaps, so either generation
				// may answer — but never anything else.
				if pr := ask(); pr.Source != "L+M" && pr.Source != "L" {
					t.Errorf("impossible source %q", pr.Source)
					return
				}
			}
		}()
	}
	for i := 0; i < 20; i++ {
		path, want := pathA, "L+M"
		if i%2 == 1 {
			path, want = pathB, "L"
		}
		if err := s.ReloadModelFile(path); err != nil {
			t.Fatalf("reload %s: %v", path, err)
		}
		// The swap has returned: the very same (hot, cached) query must
		// now be answered by the new chain — a stale cached tier here
		// means invalidation raced the chain swap.
		if pr := ask(); pr.Source != want {
			t.Fatalf("swap %d: got tier source %q, want %q (stale cache)", i, pr.Source, want)
		}
	}
	close(stop)
	wg.Wait()
}
