package mapserver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"lumos5g"
	"lumos5g/internal/geo"
)

func TestQuantizeKey(t *testing.T) {
	px := geo.Pixel{X: 100, Y: 201}
	k := quantizeKey(px, nil, nil)
	if k != (predKey{Col: 50, Row: 100, SpeedB: -1, BearingB: -1}) {
		t.Fatalf("bare key: %+v", k)
	}
	// Neighbouring pixels in the same 2 m map cell share a key.
	if quantizeKey(geo.Pixel{X: 101, Y: 200}, nil, nil) != k {
		t.Fatal("same-cell pixels must share a key")
	}
	sp, b := 3.7, -10.0
	k = quantizeKey(px, &sp, &b)
	if k.SpeedB != 3 {
		t.Fatalf("speed bucket: %d", k.SpeedB)
	}
	if k.BearingB != 15 { // -10° wraps to 350°, the last 22.5° sector
		t.Fatalf("wrapped bearing sector: %d", k.BearingB)
	}
	north := 0.0
	if k := quantizeKey(px, nil, &north); k.BearingB != 0 || k.SpeedB != -1 {
		t.Fatalf("north, no speed: %+v", k)
	}
	// "speed 0" and "no speed" are served by different tiers and must not
	// share a cache entry.
	zero := 0.0
	if quantizeKey(px, &zero, nil) == quantizeKey(px, nil, nil) {
		t.Fatal("speed 0 must differ from absent speed")
	}
}

// TestQuantizeKeyEdges pins the boundary behaviour of the quantizer:
// the compass seam, the speed-bucket edges, and the guarantee that the
// -1 absent-sensor sentinels cannot collide with any valid reading.
func TestQuantizeKeyEdges(t *testing.T) {
	px := geo.Pixel{X: 10, Y: 10}
	sector := func(deg float64) int16 {
		return quantizeKey(px, nil, &deg).BearingB
	}
	// -360°, 0° and 360° are the same heading and must share sector 0
	// (math.Mod(-360, 360) is -0, which must not wrap to the top sector).
	if s0, sNeg, sPos := sector(0), sector(-360), sector(360); s0 != 0 || sNeg != 0 || sPos != 0 {
		t.Fatalf("north aliases: 0°→%d -360°→%d 360°→%d", s0, sNeg, sPos)
	}
	// Sector boundaries: 22.5° opens sector 1; just below stays in 0.
	if s := sector(22.5); s != 1 {
		t.Fatalf("22.5° sector: %d", s)
	}
	if s := sector(22.4999); s != 0 {
		t.Fatalf("22.4999° sector: %d", s)
	}
	if s := sector(359.9999); s != 15 {
		t.Fatalf("359.9999° sector: %d", s)
	}
	// Speed buckets truncate: [0,1) → 0, [1,2) → 1; the range cap (500)
	// stays within int16.
	speed := func(v float64) int16 {
		return quantizeKey(px, &v, nil).SpeedB
	}
	if b := speed(0.999); b != 0 {
		t.Fatalf("0.999 km/h bucket: %d", b)
	}
	if b := speed(1.0); b != 1 {
		t.Fatalf("1.0 km/h bucket: %d", b)
	}
	if b := speed(500); b != 500 {
		t.Fatalf("500 km/h bucket: %d", b)
	}
	// No valid reading can produce the -1 sentinels: speeds are
	// non-negative (bucket ≥ 0) and bearing sectors land in [0, 15].
	for _, v := range []float64{0, 0.5, 42, 500} {
		if b := speed(v); b < 0 {
			t.Fatalf("valid speed %v hit the absent sentinel: %d", v, b)
		}
	}
	for deg := -360.0; deg <= 360; deg += 7.5 {
		if s := sector(deg); s < 0 || s > 15 {
			t.Fatalf("bearing %v° out of sector range: %d", deg, s)
		}
	}
}

func TestPredCacheLRUAndOutcomes(t *testing.T) {
	var evictions, abandoned atomic.Uint64
	c := newPredCache(2, func() { evictions.Add(1) }, func() { abandoned.Add(1) })
	mk := func(i int) predKey { return predKey{Col: int32(i)} }
	val := func(i int) func() predictResponse {
		return func() predictResponse { return predictResponse{Mbps: float64(i)} }
	}
	if r, _, o := c.getOrCompute(mk(1), val(1)); r.Mbps != 1 || o != outcomeMiss {
		t.Fatalf("miss compute: %+v %v", r, o)
	}
	c.getOrCompute(mk(2), val(2))
	// Hit on 1 refreshes its recency, so inserting 3 must evict 2.
	if _, _, o := c.getOrCompute(mk(1), func() predictResponse {
		t.Error("hit must not compute")
		return predictResponse{}
	}); o != outcomeHit {
		t.Fatalf("outcome: %v", o)
	}
	c.getOrCompute(mk(3), val(3))
	if got := evictions.Load(); got != 1 {
		t.Fatalf("evictions after first overflow: %d", got)
	}
	recomputed := false
	c.getOrCompute(mk(2), func() predictResponse { recomputed = true; return predictResponse{} })
	if !recomputed {
		t.Fatal("LRU evicted the wrong entry (2 should have been dropped)")
	}
	// Re-inserting 2 pushed the store over capacity again, evicting the
	// then-oldest entry (1); 3 must have survived as the other resident.
	c.getOrCompute(mk(3), func() predictResponse {
		t.Error("3 must have survived the eviction")
		return predictResponse{}
	})
	if e, a := evictions.Load(), abandoned.Load(); e != 2 || a != 0 {
		t.Fatalf("evictions %d abandoned %d", e, a)
	}
	if c.size() != 2 {
		t.Fatalf("size: %d", c.size())
	}
	// Disabled cache is represented as nil, not a zero-capacity store.
	if newPredCache(0, nil, nil) != nil {
		t.Fatal("capacity 0 must disable the cache")
	}
}

// TestPredCacheSingleflight holds the leader mid-compute and proves that
// followers on the same key never run their compute function: once the
// leader's pending entry is in the map (guaranteed before `started`
// closes), every later arrival blocks on it.
func TestPredCacheSingleflight(t *testing.T) {
	c := newPredCache(8, nil, nil)
	key := predKey{Col: 1, Row: 2, SpeedB: 3, BearingB: 4}
	started := make(chan struct{})
	release := make(chan struct{})
	var leaderBody []byte
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var o cacheOutcome
		_, leaderBody, o = c.getOrCompute(key, func() predictResponse {
			close(started)
			<-release
			return predictResponse{Mbps: 42, Source: "L"}
		})
		if o != outcomeMiss {
			t.Errorf("leader outcome: %v", o)
		}
	}()
	<-started

	const followers = 8
	bodies := make([][]byte, followers)
	outcomes := make([]cacheOutcome, followers)
	var fwg sync.WaitGroup
	for i := 0; i < followers; i++ {
		fwg.Add(1)
		go func(i int) {
			defer fwg.Done()
			_, bodies[i], outcomes[i] = c.getOrCompute(key, func() predictResponse {
				t.Error("follower compute ran — singleflight broken")
				return predictResponse{}
			})
		}(i)
	}
	close(release)
	wg.Wait()
	fwg.Wait()
	for i, b := range bodies {
		if !bytes.Equal(b, leaderBody) {
			t.Fatalf("follower %d body differs: %s vs %s", i, b, leaderBody)
		}
		if outcomes[i] != outcomeHit {
			t.Fatalf("follower %d outcome: %v", i, outcomes[i])
		}
	}
}

func TestPredCacheLeaderPanicRecovers(t *testing.T) {
	var abandoned atomic.Uint64
	c := newPredCache(8, nil, func() { abandoned.Add(1) })
	key := predKey{Col: 9}
	func() {
		defer func() { _ = recover() }()
		c.getOrCompute(key, func() predictResponse { panic("model exploded") })
	}()
	if c.size() != 0 {
		t.Fatal("abandoned entry must be removed")
	}
	if abandoned.Load() != 1 {
		t.Fatalf("abandoned hook: %d", abandoned.Load())
	}
	// The key is computable again — no wedged pending entry.
	r, body, o := c.getOrCompute(key, func() predictResponse { return predictResponse{Mbps: 7} })
	if r.Mbps != 7 || len(body) == 0 || o != outcomeMiss {
		t.Fatalf("recompute after panic: %+v %q %v", r, body, o)
	}
}

// TestPredCacheNonFiniteLeader pins the non-panicking marshal contract:
// a leader whose compute produces NaN/Inf must not poison the cache —
// the entry is dropped, the outcome is invalid (nil body), followers
// recompute uncached, and the key stays computable afterwards.
func TestPredCacheNonFiniteLeader(t *testing.T) {
	var abandoned atomic.Uint64
	c := newPredCache(8, nil, func() { abandoned.Add(1) })
	key := predKey{Col: 11}
	_, body, o := c.getOrCompute(key, func() predictResponse {
		return predictResponse{Mbps: math.NaN()}
	})
	if body != nil || o != outcomeInvalid {
		t.Fatalf("NaN leader: body %q outcome %v", body, o)
	}
	if c.size() != 0 {
		t.Fatal("invalid entry must not be cached")
	}
	if abandoned.Load() != 1 {
		t.Fatalf("abandoned hook: %d", abandoned.Load())
	}
	r, body, o := c.getOrCompute(key, func() predictResponse { return predictResponse{Mbps: 5} })
	if r.Mbps != 5 || body == nil || o != outcomeMiss {
		t.Fatalf("recompute after invalid: %+v %q %v", r, body, o)
	}
}

// TestMarshalResponseNonFinite is the regression for the panic that
// lived here: marshalResponse must return nil — not panic — for every
// non-finite Mbps.
func TestMarshalResponseNonFinite(t *testing.T) {
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if b := marshalResponse(predictResponse{Mbps: v}); b != nil {
			t.Fatalf("Mbps=%v must have no wire form, got %q", v, b)
		}
	}
	if b := marshalResponse(predictResponse{Mbps: 12}); b == nil || b[len(b)-1] != '\n' {
		t.Fatalf("finite response must marshal newline-terminated: %q", b)
	}
}

func TestPredictCacheHitsAndHealth(t *testing.T) {
	tm, _ := setup(t)
	s, err := NewWithChain(tm, trainedChain(t))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s)
	defer srv.Close()

	url := fmt.Sprintf("%s/predict?lat=%f&lon=%f&speed=4&bearing=10", srv.URL, testLat, testLon)
	_, body1 := get(t, url)
	_, body2 := get(t, url)
	if body1 != body2 {
		t.Fatalf("cached body differs:\n%s\n%s", body1, body2)
	}

	var h healthJSON
	_, hb := get(t, srv.URL+"/healthz")
	if err := json.Unmarshal([]byte(hb), &h); err != nil {
		t.Fatal(err)
	}
	if h.CacheHits != 1 || h.CacheMisses != 1 || h.CacheEntries != 1 {
		t.Fatalf("cache counters: %+v", h)
	}
	// The hit answered without a model walk: tier counters see one query,
	// and the audit identity
	// responses = Σ tiers_served + cache_hits + cache_uncached holds.
	var served uint64
	for _, n := range h.TiersServed {
		served += n
	}
	if served != 1 || served+h.CacheHits+h.CacheUncached != 2 {
		t.Fatalf("tiers_served %v with %d hits %d uncached", h.TiersServed, h.CacheHits, h.CacheUncached)
	}

	// A model swap empties the cache but keeps the lifetime counters.
	s.SetChain(s.Chain())
	_, hb = get(t, srv.URL+"/healthz")
	if err := json.Unmarshal([]byte(hb), &h); err != nil {
		t.Fatal(err)
	}
	if h.CacheEntries != 0 || h.CacheHits != 1 {
		t.Fatalf("after swap: %+v", h)
	}
	// The same query now recomputes on the fresh cache.
	if _, body3 := get(t, url); body3 != body1 {
		t.Fatalf("same model after swap must answer identically:\n%s\n%s", body3, body1)
	}
	_, hb = get(t, srv.URL+"/healthz")
	if err := json.Unmarshal([]byte(hb), &h); err != nil {
		t.Fatal(err)
	}
	if h.CacheMisses != 2 || h.CacheEntries != 1 {
		t.Fatalf("post-swap recompute: %+v", h)
	}
}

func TestPredictCacheDisabled(t *testing.T) {
	tm, _ := setup(t)
	s, err := NewWithChain(tm, trainedChain(t), WithPredictCacheSize(0))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s)
	defer srv.Close()
	url := fmt.Sprintf("%s/predict?lat=%f&lon=%f&speed=4&bearing=10", srv.URL, testLat, testLon)
	_, body1 := get(t, url)
	_, body2 := get(t, url)
	if body1 != body2 {
		t.Fatal("uncached answers must still be deterministic")
	}
	var h healthJSON
	_, hb := get(t, srv.URL+"/healthz")
	if err := json.Unmarshal([]byte(hb), &h); err != nil {
		t.Fatal(err)
	}
	if h.CacheHits != 0 || h.CacheMisses != 0 || h.CacheEntries != 0 {
		t.Fatalf("disabled cache counted: %+v", h)
	}
}

// TestCacheCoherentUnderConcurrentReload is the hot-swap coherence test:
// goroutines hammer one cached /predict query while the model is
// concurrently reloaded between two chains with different tier shapes.
// Because the cache is swapped in the same critical section as the
// chain, a query issued after a reload returns must always be answered
// by the new chain's tier — never a stale cached tier from the old one.
// Run under -race (`make tier1` does).
func TestCacheCoherentUnderConcurrentReload(t *testing.T) {
	tm, predLM := setup(t)
	area, err := lumos5g.AreaByName("Airport")
	if err != nil {
		t.Fatal(err)
	}
	cfg := lumos5g.CampaignConfig{Seed: 1, WalkPasses: 3, BackgroundUEProb: 0.1}
	clean, _ := lumos5g.CleanDataset(lumos5g.GenerateArea(area, cfg))
	predL, err := lumos5g.Train(clean, lumos5g.GroupL, lumos5g.ModelGDBT, lumos5g.Scale{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Chain A serves a full query from its L+M tier; chain B has no L+M
	// tier at all, so the same query is served by L. The serving tier's
	// Source is therefore a fingerprint of which model generation answered.
	chainA, err := lumos5g.NewFallbackChain(250, predLM, predL)
	if err != nil {
		t.Fatal(err)
	}
	chainB, err := lumos5g.NewFallbackChain(250, predL)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	pathA := filepath.Join(dir, "a.l5g")
	pathB := filepath.Join(dir, "b.l5g")
	if err := chainA.SaveFile(pathA); err != nil {
		t.Fatal(err)
	}
	if err := chainB.SaveFile(pathB); err != nil {
		t.Fatal(err)
	}

	s, err := NewWithChain(tm, chainA)
	if err != nil {
		t.Fatal(err)
	}
	query := fmt.Sprintf("/predict?lat=%f&lon=%f&speed=4&bearing=10", testLat, testLon)
	ask := func() predictResponse {
		rr := httptest.NewRecorder()
		s.ServeHTTP(rr, httptest.NewRequest("GET", query, nil))
		if rr.Code != 200 {
			t.Errorf("predict: %d %s", rr.Code, rr.Body.String())
		}
		var pr predictResponse
		if err := json.Unmarshal(rr.Body.Bytes(), &pr); err != nil {
			t.Errorf("bad body: %v %s", err, rr.Body.String())
		}
		return pr
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Hammer goroutines race the swaps, so either generation
				// may answer — but never anything else.
				if pr := ask(); pr.Source != "L+M" && pr.Source != "L" {
					t.Errorf("impossible source %q", pr.Source)
					return
				}
			}
		}()
	}
	for i := 0; i < 20; i++ {
		path, want := pathA, "L+M"
		if i%2 == 1 {
			path, want = pathB, "L"
		}
		if err := s.ReloadModelFile(path); err != nil {
			t.Fatalf("reload %s: %v", path, err)
		}
		// The swap has returned: the very same (hot, cached) query must
		// now be answered by the new chain — a stale cached tier here
		// means invalidation raced the chain swap.
		if pr := ask(); pr.Source != want {
			t.Fatalf("swap %d: got tier source %q, want %q (stale cache)", i, pr.Source, want)
		}
	}
	close(stop)
	wg.Wait()
}
