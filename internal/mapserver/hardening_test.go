package mapserver

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestHealthzDegradedWithoutModel(t *testing.T) {
	tm, _ := setup(t)
	s, err := New(tm, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s)
	defer srv.Close()
	resp, body := get(t, srv.URL+"/healthz")
	if resp.StatusCode != 200 {
		t.Fatalf("degraded healthz must still be 200, got %d", resp.StatusCode)
	}
	var h healthJSON
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatal(err)
	}
	if !h.OK || !h.Degraded || h.Model {
		t.Fatalf("degraded state not reported: %+v", h)
	}

	// With a model the same probe reports healthy.
	full := newTestServer(t)
	_, body = get(t, full.URL+"/healthz")
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatal(err)
	}
	if !h.OK || h.Degraded || !h.Model {
		t.Fatalf("healthy state not reported: %+v", h)
	}
}

func TestRecoveryMiddlewareTurnsPanicInto500(t *testing.T) {
	h := withRecovery(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("handler bug")
	}))
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/x", nil))
	if rr.Code != http.StatusInternalServerError {
		t.Fatalf("want 500, got %d", rr.Code)
	}
	var e apiError
	if err := json.Unmarshal(rr.Body.Bytes(), &e); err != nil || e.Error == "" {
		t.Fatalf("panic must produce a structured JSON error, got %q", rr.Body.String())
	}
}

func TestRecoveryThroughFullMiddlewareChain(t *testing.T) {
	// A panic inside a route must come back as a 500 through the whole
	// served chain (including the timeout handler's goroutine hop).
	tm, pred := setup(t)
	s, err := New(tm, pred)
	if err != nil {
		t.Fatal(err)
	}
	s.mux.HandleFunc("/boom", func(http.ResponseWriter, *http.Request) {
		panic("injected")
	})
	srv := httptest.NewServer(s)
	defer srv.Close()
	resp, body := get(t, srv.URL+"/boom")
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("want 500, got %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(body, `"error"`) {
		t.Fatalf("want JSON error body, got %q", body)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	srv := newTestServer(t)
	resp, err := http.Post(srv.URL+"/healthz", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST must be rejected, got %d", resp.StatusCode)
	}
	if allow := resp.Header.Get("Allow"); !strings.Contains(allow, "GET") {
		t.Fatalf("Allow header missing: %q", allow)
	}
}

func TestPredictRangeValidation(t *testing.T) {
	srv := newTestServer(t)
	cases := []string{
		"lat=999&lon=0&speed=4&bearing=10",  // latitude out of range
		"lat=0&lon=-999&speed=4&bearing=10", // longitude out of range
		"lat=0&lon=0&speed=-3&bearing=10",   // negative speed
		"lat=0&lon=0&speed=4&bearing=9999",  // bearing out of range
		"lat=NaN&lon=0&speed=4&bearing=10",  // non-finite input
	}
	// Missing optional params are NOT an error any more: the fallback
	// chain degrades instead (covered by TestPredictValidation).
	for _, qs := range cases {
		resp, body := get(t, srv.URL+"/predict?"+qs)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("query %q: want 400, got %d (%s)", qs, resp.StatusCode, body)
		}
		if !strings.Contains(body, `"error"`) {
			t.Fatalf("query %q: want structured JSON error, got %q", qs, body)
		}
	}
}

func TestRequestTimeoutMiddleware(t *testing.T) {
	tm, pred := setup(t)
	s, err := New(tm, pred, WithRequestTimeout(50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	s.mux.HandleFunc("/slow", func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
		case <-time.After(5 * time.Second):
		}
	})
	srv := httptest.NewServer(s)
	defer srv.Close()
	resp, body := get(t, srv.URL+"/slow")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("want 503 on timeout, got %d (%s)", resp.StatusCode, body)
	}
	if !strings.Contains(body, "timed out") {
		t.Fatalf("want timeout error body, got %q", body)
	}
}

func TestGracefulServeShutdown(t *testing.T) {
	tm, pred := setup(t)
	s, err := New(tm, pred)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- Serve(ctx, ln, s, time.Second) }()

	url := "http://" + ln.Addr().String() + "/healthz"
	var resp *http.Response
	for i := 0; i < 50; i++ {
		resp, err = http.Get(url)
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("server never came up: %v", err)
	}
	resp.Body.Close()

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("graceful shutdown returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after ctx cancellation")
	}
	if _, err := http.Get(url); err == nil {
		t.Fatal("listener still accepting after shutdown")
	}
}
