package mapserver

import (
	"context"
	"os"
	"sync"
	"time"
)

// WatchModelFile polls path every interval and hot-reloads the serving
// model whenever the file's mtime or size changes, blocking until ctx is
// cancelled. Artifacts are written atomically (tmp+rename) by
// SaveFile, so the watcher never observes a half-written model; if it
// still loads a damaged one, ReloadModelFile rejects it and the previous
// model keeps serving. onEvent, if non-nil, is invoked after every
// reload attempt with its outcome (nil on success) — wire it to a
// logger.
//
// Run it in its own goroutine, or use StartModelWatch which owns the
// goroutine and hands back a joining stop handle:
//
//	go srv.WatchModelFile(ctx, "model.l5g", 5*time.Second, func(err error) { ... })
func (s *Server) WatchModelFile(ctx context.Context, path string, interval time.Duration, onEvent func(error)) {
	if interval <= 0 {
		interval = 5 * time.Second
	}
	var lastMod time.Time
	var lastSize int64
	// Prime from the current file state when a model is already being
	// served, so startup does not trigger a spurious reload of the
	// artifact the caller just loaded.
	if s.Chain() != nil {
		if fi, err := os.Stat(path); err == nil {
			lastMod, lastSize = fi.ModTime(), fi.Size()
		}
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		fi, err := os.Stat(path)
		if err != nil {
			// Absent file: keep serving what we have. Deletion is not a
			// reload signal — an operator replacing the artifact goes
			// through rename, which is atomic.
			continue
		}
		if fi.ModTime().Equal(lastMod) && fi.Size() == lastSize {
			continue
		}
		lastMod, lastSize = fi.ModTime(), fi.Size()
		err = s.ReloadModelFile(path)
		if onEvent != nil {
			onEvent(err)
		}
	}
}

// StartModelWatch runs WatchModelFile in its own goroutine and returns
// a stop function that cancels the watcher AND waits for the goroutine
// to exit. This is what a drain wants: after stop() returns, no poller
// is left stat-ing the artifact or swapping models behind the shutdown
// sequence. stop is idempotent.
func (s *Server) StartModelWatch(path string, interval time.Duration, onEvent func(error)) (stop func()) {
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.WatchModelFile(ctx, path, interval, onEvent)
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			cancel()
			<-done
		})
	}
}
