// Package mapserver exposes a 5G throughput map and its companion ML
// model over HTTP — the service side of the paper's Fig 4 scenario, where
// "UEs automatically download 5G throughput maps with ML models based on
// their geographic locations" (§2.3), and of the user-carrier
// collaborative platform of §8.2.
//
// Routes:
//
//	GET /healthz          liveness probe (reports degraded without a model)
//	GET /map.svg          the Fig 3c heatmap as SVG
//	GET /cells.json       per-cell statistics as JSON
//	GET /model            the downloadable predictor (gob payload)
//	GET /predict?lat=..&lon=..&speed=..&bearing=..
//	                      server-side throughput prediction as JSON
//
// Every route runs behind panic-recovery, request-timeout, method and
// request-size middleware; errors are structured JSON ({"error": ...}).
package mapserver

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"time"

	"lumos5g"
	"lumos5g/internal/geo"
)

// Server bundles the published artifacts.
type Server struct {
	tm   *lumos5g.ThroughputMap
	pred *lumos5g.Predictor
	mux  *http.ServeMux
	h    http.Handler // mux wrapped in the hardening middleware
}

// Option tunes the server's hardening envelope.
type Option func(*options)

type options struct {
	timeout  time.Duration
	maxBytes int64
}

// WithRequestTimeout bounds each request's handler time (default 10 s).
func WithRequestTimeout(d time.Duration) Option {
	return func(o *options) { o.timeout = d }
}

// WithMaxRequestBytes caps request body size (default 1 MiB).
func WithMaxRequestBytes(n int64) Option {
	return func(o *options) { o.maxBytes = n }
}

// New creates a handler for the given map and (optionally nil) predictor.
// Without a predictor the server runs degraded: the map routes work,
// /model and /predict return 404, and /healthz reports the degradation.
// A non-nil predictor must use the L or L+M feature group: those are the
// only groups whose features a bare /predict query can supply.
func New(tm *lumos5g.ThroughputMap, pred *lumos5g.Predictor, opts ...Option) (*Server, error) {
	if tm == nil {
		return nil, fmt.Errorf("mapserver: nil throughput map")
	}
	if pred != nil {
		if g := pred.Group(); g != lumos5g.GroupL && g != lumos5g.GroupLM {
			return nil, fmt.Errorf("mapserver: /predict supports L or L+M predictors, not %s", g)
		}
	}
	o := options{timeout: 10 * time.Second, maxBytes: 1 << 20}
	for _, opt := range opts {
		opt(&o)
	}
	s := &Server{tm: tm, pred: pred, mux: http.NewServeMux()}
	s.mux.HandleFunc("/healthz", s.handleHealth)
	s.mux.HandleFunc("/map.svg", s.handleSVG)
	s.mux.HandleFunc("/cells.json", s.handleCells)
	s.mux.HandleFunc("/model", s.handleModel)
	s.mux.HandleFunc("/predict", s.handlePredict)
	// Recovery sits outermost: http.TimeoutHandler re-raises handler
	// panics on the caller goroutine, so the recover catches both direct
	// and timed-out panics.
	s.h = withRecovery(withTimeout(withReadOnly(withMaxBytes(s.mux, o.maxBytes)), o.timeout))
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.h.ServeHTTP(w, r)
}

// healthJSON is the /healthz wire form. Degraded means the service is up
// but missing its predictor, so model-backed routes are unavailable.
type healthJSON struct {
	OK       bool `json:"ok"`
	Degraded bool `json:"degraded"`
	Cells    int  `json:"cells"`
	Model    bool `json:"model"`
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, healthJSON{
		OK:       true,
		Degraded: s.pred == nil,
		Cells:    len(s.tm.Cells),
		Model:    s.pred != nil,
	})
}

func (s *Server) handleSVG(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "image/svg+xml")
	_, _ = w.Write([]byte(s.tm.RenderSVG(6)))
}

// cellJSON is the wire form of one map cell.
type cellJSON struct {
	Col        int     `json:"col"`
	Row        int     `json:"row"`
	MeanMbps   float64 `json:"mean_mbps"`
	MedianMbps float64 `json:"median_mbps"`
	CV         float64 `json:"cv"`
	N          int     `json:"n"`
	NRFraction float64 `json:"nr_fraction"`
}

func (s *Server) handleCells(w http.ResponseWriter, _ *http.Request) {
	cells := s.tm.SortedCells()
	out := make([]cellJSON, len(cells))
	for i, c := range cells {
		out[i] = cellJSON{
			Col: c.Key.Col, Row: c.Key.Row,
			MeanMbps: c.MeanMbps, MedianMbps: c.MedianMbps,
			CV: c.CV, N: c.N, NRFraction: c.NRFraction,
		}
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(out)
}

func (s *Server) handleModel(w http.ResponseWriter, _ *http.Request) {
	if s.pred == nil {
		writeError(w, http.StatusNotFound, "no model published")
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition", `attachment; filename="lumos5g-model.gob"`)
	if err := s.pred.Save(w); err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
	}
}

// predictResponse is the /predict wire form.
type predictResponse struct {
	Mbps  float64 `json:"mbps"`
	Class string  `json:"class"`
	Group string  `json:"group"`
}

// queryFloat parses a required query parameter as a finite float within
// [lo, hi], returning a client-facing error message otherwise.
func queryFloat(q string, name string, lo, hi float64) (float64, error) {
	v, err := strconv.ParseFloat(q, 64)
	if err != nil {
		return 0, fmt.Errorf("%s must be a number", name)
	}
	if math.IsNaN(v) || math.IsInf(v, 0) || v < lo || v > hi {
		return 0, fmt.Errorf("%s must be in [%g, %g]", name, lo, hi)
	}
	return v, nil
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	if s.pred == nil {
		writeError(w, http.StatusNotFound, "no model published")
		return
	}
	q := r.URL.Query()
	lat, err := queryFloat(q.Get("lat"), "lat", -90, 90)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	lon, err := queryFloat(q.Get("lon"), "lon", -180, 180)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	px := geo.Pixelize(geo.LatLon{Lat: lat, Lon: lon}, geo.DefaultZoom)

	// Assemble the feature vector by name so the handler stays correct
	// if the group's column layout evolves.
	vals := map[string]float64{
		"pixel_x": float64(px.X),
		"pixel_y": float64(px.Y),
	}
	if s.pred.Group() == lumos5g.GroupLM {
		speed, err := queryFloat(q.Get("speed"), "speed (km/h, required for L+M models)", 0, 500)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		bearing, err := queryFloat(q.Get("bearing"), "bearing (degrees, required for L+M models)", -360, 360)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		rad := math.Pi / 180
		vals["moving_speed"] = speed
		vals["compass_sin"] = math.Sin(bearing * rad)
		vals["compass_cos"] = math.Cos(bearing * rad)
	}
	names := s.pred.FeatureNames()
	x := make([]float64, len(names))
	for i, n := range names {
		v, ok := vals[n]
		if !ok {
			writeError(w, http.StatusInternalServerError, "model requires unsupported feature "+n)
			return
		}
		x[i] = v
	}
	mbps := s.pred.Predict(x)
	writeJSON(w, http.StatusOK, predictResponse{
		Mbps:  mbps,
		Class: lumos5g.ClassOf(mbps).String(),
		Group: s.pred.Group().String(),
	})
}
