// Package mapserver exposes a 5G throughput map and its companion ML
// model over HTTP — the service side of the paper's Fig 4 scenario, where
// "UEs automatically download 5G throughput maps with ML models based on
// their geographic locations" (§2.3), and of the user-carrier
// collaborative platform of §8.2.
//
// Routes:
//
//	GET /healthz          liveness probe (tier shape, reload health)
//	GET /map.svg          the Fig 3c heatmap as SVG
//	GET /cells.json       per-cell statistics as JSON
//	GET /model            the downloadable model artifact (chain bundle)
//	GET /predict?lat=..&lon=..[&speed=..&bearing=..]
//	                      server-side throughput prediction as JSON
//	POST /predict/batch   many predictions in one round trip: a JSON
//	                      array of {lat, lon[, speed][, bearing]} in,
//	                      an array of prediction objects out
//
// Prediction is served through a lumos5g.FallbackChain and degrades
// instead of failing: queries missing speed/bearing fall to smaller
// feature tiers, and a server with no model at all answers from the
// throughput map itself (cell mean, then map-wide mean). Responses carry
// the serving tier so clients can weigh the estimate. The model can be
// hot-swapped under load (SetChain / ReloadModelFile / WatchModelFile);
// corrupt or truncated artifacts are rejected while the previous model
// keeps serving.
//
// Every route runs behind panic-recovery, request-timeout, method and
// request-size middleware; errors are structured JSON ({"error": ...}).
package mapserver

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"lumos5g"
	"lumos5g/internal/engine"
	"lumos5g/internal/geo"
	"lumos5g/internal/ingest"
	"lumos5g/internal/wire"
)

// Server bundles the published artifacts.
type Server struct {
	tm  *lumos5g.ThroughputMap
	mux *http.ServeMux
	h   http.Handler // mux wrapped in the hardening middleware

	// mapPrior is the sample-weighted map-wide mean throughput: the
	// last-ditch /predict answer and the last-resort prior handed to
	// single-predictor artifacts on load.
	mapPrior float64

	// mu guards the live model generation, its prediction cache and
	// reload bookkeeping. Prediction takes the read lock; hot swaps take
	// the write lock, so a reload is atomic with respect to every
	// in-flight query — and because the cache is replaced in the same
	// critical section as the engine generation, a swapped-out model's
	// cached answers can never be served after the swap.
	mu        sync.RWMutex
	eng       *engine.Engine // immutable per generation; never nil
	cache     *predCache     // nil when caching is disabled or no model serves
	reloadErr string         // last rejected reload ("" when healthy)

	cacheSize int // entries per cache generation (0 = disabled)

	// m owns every serving counter (the single-bookkeeping rule:
	// /healthz reads these same instruments back; see metrics.go).
	m *serverMetrics

	// ing is the optional streaming-ingest pipeline behind POST
	// /ingest (see ingest.go); nil until AttachIngestor.
	ing ingPtr

	// Structured request logging (nil = disabled). logmu serialises
	// concurrent log lines onto logw.
	logw  io.Writer
	logmu sync.Mutex
}

// Option tunes the server's hardening envelope.
type Option func(*options)

type options struct {
	timeout      time.Duration
	maxBytes     int64
	cacheSize    int
	metricsRoute bool
	requestLog   io.Writer
	maxInFlight  int
}

// WithRequestTimeout bounds each request's handler time (default 10 s).
func WithRequestTimeout(d time.Duration) Option {
	return func(o *options) { o.timeout = d }
}

// WithMaxRequestBytes caps request body size (default 1 MiB).
func WithMaxRequestBytes(n int64) Option {
	return func(o *options) { o.maxBytes = n }
}

// WithPredictCacheSize sets the /predict cache capacity in quantized-key
// entries (default 4096). n <= 0 disables the cache: every query walks
// the model.
func WithPredictCacheSize(n int) Option {
	return func(o *options) { o.cacheSize = n }
}

// WithMetricsRoute controls whether GET /metrics is mounted (default
// on). The registry is always live — /healthz reads it — this only
// gates the Prometheus exposition route.
func WithMetricsRoute(on bool) Option {
	return func(o *options) { o.metricsRoute = on }
}

// WithRequestLog enables structured request logging: one JSON line per
// request on w, carrying the request ID also returned to the client in
// X-Request-Id. Lines are serialised; w need not be safe for concurrent
// use.
func WithRequestLog(w io.Writer) Option {
	return func(o *options) { o.requestLog = w }
}

// WithMaxInFlight bounds concurrently served work requests (everything
// except /healthz and /metrics, which probes must always reach). Above
// the bound the server sheds: 503 with a Retry-After header and a
// lumos_shed_total increment, so upstream retries back off instead of
// dogpiling a slow server. n <= 0 disables shedding (the default).
func WithMaxInFlight(n int) Option {
	return func(o *options) { o.maxInFlight = n }
}

// defaultPredictCacheSize is roughly a 4 km² area at 2 m cells under a
// handful of speed/bearing buckets — ample for one map's hot set.
const defaultPredictCacheSize = 4096

// New creates a handler for the given map and (optionally nil) predictor.
// The predictor is wrapped into a single-tier fallback chain whose
// last-resort prior is the map-wide mean. Without a predictor the server
// runs degraded: /model returns 404 and /predict answers from the map.
// A non-nil predictor must use the L or L+M feature group: those are the
// only groups whose features a bare /predict query can supply.
func New(tm *lumos5g.ThroughputMap, pred *lumos5g.Predictor, opts ...Option) (*Server, error) {
	if pred == nil {
		return NewWithChain(tm, nil, opts...)
	}
	if g := pred.Group(); g != lumos5g.GroupL && g != lumos5g.GroupLM {
		return nil, fmt.Errorf("mapserver: /predict supports L or L+M predictors, not %s", g)
	}
	s, err := NewWithChain(tm, nil, opts...)
	if err != nil {
		return nil, err
	}
	chain, err := lumos5g.ChainFromPredictor(pred, s.mapPrior)
	if err != nil {
		return nil, err
	}
	s.SetChain(chain)
	return s, nil
}

// NewWithChain creates a handler serving predictions through the given
// fallback chain (nil for a model-less, map-only degraded server). Tiers
// whose features a /predict query cannot supply simply never serve; they
// still back /model downloads.
func NewWithChain(tm *lumos5g.ThroughputMap, chain *lumos5g.FallbackChain, opts ...Option) (*Server, error) {
	eng, err := engine.New(tm, chain)
	if err != nil {
		return nil, fmt.Errorf("mapserver: %w", err)
	}
	o := options{timeout: 10 * time.Second, maxBytes: 1 << 20, cacheSize: defaultPredictCacheSize, metricsRoute: true}
	for _, opt := range opts {
		opt(&o)
	}
	s := &Server{tm: tm, mux: http.NewServeMux(), eng: eng, mapPrior: eng.MapPrior(), cacheSize: o.cacheSize, logw: o.requestLog}
	s.m = newServerMetrics(s)
	if chain != nil {
		s.cache = s.newCache()
	}
	s.mux.HandleFunc("/healthz", s.handleHealth)
	s.mux.HandleFunc("/map.svg", s.handleSVG)
	s.mux.HandleFunc("/cells.json", s.handleCells)
	s.mux.HandleFunc("/model", s.handleModel)
	s.mux.HandleFunc("/predict", s.handlePredict)
	s.mux.HandleFunc("/predict/batch", s.handlePredictBatch)
	s.mux.HandleFunc("/ingest", s.handleIngest)
	if o.metricsRoute {
		s.mux.HandleFunc("/metrics", s.handleMetrics)
	}
	// withObs sits outermost so it observes the final status of every
	// request, including the 503s the shed gate and timeout layers
	// manufacture. Shedding comes right after: a shed request must cost
	// nothing but the counter bump, and probes (/healthz, /metrics) are
	// exempt so a saturated server still reports its own saturation.
	// Recovery comes next: http.TimeoutHandler re-raises handler panics
	// on the caller goroutine, so the recover catches both direct and
	// timed-out panics.
	postPaths := map[string]bool{"/predict/batch": true, "/ingest": true}
	h := withRecovery(withTimeout(withMethodPolicy(withMaxBytes(s.mux, o.maxBytes), postPaths), o.timeout))
	h = withShed(h, o.maxInFlight, shedExempt, s.m.shed.Inc)
	s.h = s.withObs(h)
	return s, nil
}

// newCache builds one cache generation wired to the server's counters.
func (s *Server) newCache() *predCache {
	return newPredCache(s.cacheSize, s.m.cacheEvictions.Inc, s.m.cacheAbandoned.Inc)
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.h.ServeHTTP(w, r)
}

// Chain returns the currently serving fallback chain (nil when the
// server is model-less).
func (s *Server) Chain() *lumos5g.FallbackChain {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.eng.Chain()
}

// Engine returns the currently serving model generation — the
// transport-agnostic core the HTTP layer wraps.
func (s *Server) Engine() *engine.Engine {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.eng
}

// SetChain atomically swaps the serving model. In-flight queries finish
// on the old generation; subsequent ones use the new. The prediction
// cache is replaced with a fresh one in the same critical section, so no
// answer computed by the old model outlives the swap. A successful
// manual swap clears any recorded reload failure.
func (s *Server) SetChain(c *lumos5g.FallbackChain) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.eng = s.eng.WithChain(c)
	s.cache = nil
	if c != nil {
		s.cache = s.newCache()
	}
	s.reloadErr = ""
}

// ReloadModelFile loads a model artifact (chain bundle or single
// predictor) from path and swaps it in atomically. A damaged artifact is
// rejected — the error is recorded for /healthz and the previous model
// keeps serving.
func (s *Server) ReloadModelFile(path string) error {
	chain, err := lumos5g.LoadAnyModelFile(path, s.mapPrior)
	s.mu.Lock()
	defer s.mu.Unlock()
	if err != nil {
		s.m.reloadsRejected.Inc()
		s.reloadErr = err.Error()
		return fmt.Errorf("mapserver: reload %s rejected (model kept): %w", path, err)
	}
	s.eng = s.eng.WithChain(chain)
	s.cache = s.newCache()
	s.m.reloads.Inc()
	s.reloadErr = ""
	return nil
}

// ReloadStats reports hot-reload health: successful swaps, rejected
// artifacts, and the last rejection message ("" when healthy).
func (s *Server) ReloadStats() (reloads, rejected uint64, lastErr string) {
	s.mu.RLock()
	lastErr = s.reloadErr
	s.mu.RUnlock()
	return s.m.reloads.Value(), s.m.reloadsRejected.Value(), lastErr
}

// healthJSON is the /healthz wire form. Degraded means the service is up
// but not serving with a fully healthy model: it has no model at all, or
// the newest artifact was rejected and an older model is serving.
type healthJSON struct {
	OK              bool     `json:"ok"`
	Degraded        bool     `json:"degraded"`
	Cells           int      `json:"cells"`
	Model           bool     `json:"model"`
	Tiers           []string `json:"tiers,omitempty"`
	TiersServed     []uint64 `json:"tiers_served,omitempty"`
	Reloads         uint64   `json:"reloads"`
	Rejected        uint64   `json:"rejected"`
	LastReloadError string   `json:"last_reload_error,omitempty"`
	// Prediction-cache health. tiers_served counts published model
	// walks only; successful /predict responses
	// = sum(tiers_served) + cache_hits + cache_uncached.
	CacheHits      uint64 `json:"cache_hits"`
	CacheMisses    uint64 `json:"cache_misses"`
	CacheEvictions uint64 `json:"cache_evictions"`
	CacheUncached  uint64 `json:"cache_uncached"`
	CacheEntries   int    `json:"cache_entries"`
	// Ingest is the streaming-ingest pipeline's health (nil when no
	// ingestor is attached): gate/queue/refit counters read from the
	// same instruments /metrics renders.
	Ingest *ingest.Health `json:"ingest,omitempty"`
}

// handleHealth reports serving health. Every number here is read back
// from the same obs instruments /metrics renders — there is no second
// bookkeeping path to drift from the exposition.
func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	chain, cache, reloadErr := s.eng.Chain(), s.cache, s.reloadErr
	s.mu.RUnlock()
	m := s.m
	h := healthJSON{
		OK:              true,
		Degraded:        chain == nil || reloadErr != "",
		Cells:           len(s.tm.Cells),
		Model:           chain != nil,
		Reloads:         m.reloads.Value(),
		Rejected:        m.reloadsRejected.Value(),
		LastReloadError: reloadErr,
		CacheHits:       m.cacheHits.Value(),
		CacheMisses:     m.cacheMisses.Value(),
		CacheEvictions:  m.cacheEvictions.Value(),
		CacheUncached:   m.cacheUncached.Value(),
	}
	if cache != nil {
		h.CacheEntries = cache.size()
	}
	h.Ingest = s.ingestHealth()
	if chain != nil {
		h.Tiers = chain.TierNames()
		h.TiersServed = make([]uint64, len(h.Tiers))
		for i, name := range h.Tiers {
			h.TiersServed[i] = m.tierServed.Total(map[string]string{"tier": name})
		}
	}
	writeJSON(w, http.StatusOK, h)
}

func (s *Server) handleSVG(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "image/svg+xml")
	_, _ = w.Write([]byte(s.tm.RenderSVG(6)))
}

// cellJSON is the wire form of one map cell.
type cellJSON struct {
	Col        int     `json:"col"`
	Row        int     `json:"row"`
	MeanMbps   float64 `json:"mean_mbps"`
	MedianMbps float64 `json:"median_mbps"`
	CV         float64 `json:"cv"`
	N          int     `json:"n"`
	NRFraction float64 `json:"nr_fraction"`
}

func (s *Server) handleCells(w http.ResponseWriter, _ *http.Request) {
	cells := s.tm.SortedCells()
	out := make([]cellJSON, len(cells))
	for i, c := range cells {
		out[i] = cellJSON{
			Col: c.Key.Col, Row: c.Key.Row,
			MeanMbps: c.MeanMbps, MedianMbps: c.MedianMbps,
			CV: c.CV, N: c.N, NRFraction: c.NRFraction,
		}
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(out)
}

func (s *Server) handleModel(w http.ResponseWriter, _ *http.Request) {
	chain := s.Chain()
	if chain == nil {
		writeError(w, http.StatusNotFound, "no model published")
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition", `attachment; filename="lumos5g-chain.l5g"`)
	if err := chain.Save(w); err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
	}
}

// predictResponse is the /predict wire form. Tier and Source attribute
// the serving model tier; Tier is -1 when the map itself answered
// (Source "map-cell" or "map-mean"). Group mirrors Source for clients of
// the pre-fallback API.
type predictResponse struct {
	Mbps     float64  `json:"mbps"`
	Class    string   `json:"class"`
	Group    string   `json:"group"`
	Source   string   `json:"source"`
	Tier     int      `json:"tier"`
	Degraded bool     `json:"degraded"`
	Missing  []string `json:"missing,omitempty"`
}

// checkRange rejects non-finite or out-of-range values with a
// client-facing error message.
func checkRange(v float64, name string, lo, hi float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) || v < lo || v > hi {
		return fmt.Errorf("%s must be in [%g, %g]", name, lo, hi)
	}
	return nil
}

// queryFloat parses a required query parameter as a finite float within
// [lo, hi], returning a client-facing error message otherwise.
func queryFloat(q string, name string, lo, hi float64) (float64, error) {
	v, err := strconv.ParseFloat(q, 64)
	if err != nil {
		return 0, fmt.Errorf("%s must be a number", name)
	}
	return v, checkRange(v, name, lo, hi)
}

// queryValue scans a raw query string for key and returns its first
// value — what url.Values.Get would return, minus the per-request
// url.Values map (numeric parameters come back as substrings, so the
// hot /predict path parses its query without allocating).
func queryValue(rawQuery, key string) string {
	for len(rawQuery) > 0 {
		pair := rawQuery
		if i := strings.IndexByte(rawQuery, '&'); i >= 0 {
			pair, rawQuery = rawQuery[:i], rawQuery[i+1:]
		} else {
			rawQuery = ""
		}
		eq := strings.IndexByte(pair, '=')
		if eq < 0 || pair[:eq] != key {
			continue
		}
		v := pair[eq+1:]
		if strings.ContainsAny(v, "%+") {
			u, err := url.QueryUnescape(v)
			if err != nil {
				return "" // url.ParseQuery drops malformed pairs too
			}
			return u
		}
		return v
	}
	return ""
}

// engineResponse converts one engine answer to the wire form. Group
// mirrors Source for clients of the pre-fallback API.
func engineResponse(p engine.Prediction) predictResponse {
	return predictResponse{
		Mbps:     p.Mbps,
		Class:    p.Class,
		Group:    p.Source,
		Source:   p.Source,
		Tier:     p.Tier,
		Degraded: p.Degraded,
		Missing:  p.Missing,
	}
}

// predictCall is the pooled per-request scratch of handlePredict: it
// carries the parsed query into the cache's compute seam as an
// interface, so the hot path allocates neither a closure nor the
// escaped *float64 optionals (pointers into the pooled struct are
// already heap-stable).
type predictCall struct {
	s          *Server
	eng        *engine.Engine
	px         geo.Pixel
	speed      float64
	bearing    float64
	hasSpeed   bool
	hasBearing bool
}

var predictCallPool = sync.Pool{New: func() any { return new(predictCall) }}

func (pc *predictCall) speedPtr() *float64 {
	if !pc.hasSpeed {
		return nil
	}
	return &pc.speed
}

func (pc *predictCall) bearingPtr() *float64 {
	if !pc.hasBearing {
		return nil
	}
	return &pc.bearing
}

// computePredict implements the cache's computer seam: one model walk,
// observed into the tier-latency histogram. The walk always carries the
// band (same tier decision and Mbps as Predict — the interval is two
// extra adds) so a single cache entry serves both negotiations.
func (pc *predictCall) computePredict() (predictResponse, band) {
	p := pc.eng.PredictInterval(pc.px, pc.speedPtr(), pc.bearingPtr())
	pc.s.m.tierLatency.With(p.Source).Observe(p.Walk.Seconds())
	return engineResponse(p), bandOf(p)
}

// wantIntervals reports whether the raw query negotiated the interval
// wire form (?intervals=1 or ?intervals=true).
func wantIntervals(rawQuery string) bool {
	v := queryValue(rawQuery, "intervals")
	return v == "1" || v == "true"
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	rq := r.URL.RawQuery
	lat, err := queryFloat(queryValue(rq, "lat"), "lat", -90, 90)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	lon, err := queryFloat(queryValue(rq, "lon"), "lon", -180, 180)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	pc := predictCallPool.Get().(*predictCall)
	defer predictCallPool.Put(pc)
	pc.s = s
	pc.px = geo.Pixelize(geo.LatLon{Lat: lat, Lon: lon}, geo.DefaultZoom)
	pc.hasSpeed, pc.hasBearing = false, false

	// Present-but-malformed optional parameters are still client errors.
	if raw := queryValue(rq, "speed"); raw != "" {
		pc.speed, err = queryFloat(raw, "speed (km/h)", 0, 500)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		pc.hasSpeed = true
	}
	if raw := queryValue(rq, "bearing"); raw != "" {
		pc.bearing, err = queryFloat(raw, "bearing (degrees)", -360, 360)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		pc.hasBearing = true
	}

	// One read of the (engine, cache) pair: a hot swap replaces both
	// under the write lock, so a request never mixes an old cache with a
	// new model. A request that raced a swap finishes on the pair it saw
	// — the old cache is unreachable afterwards, so its answers die with
	// it.
	s.mu.RLock()
	pc.eng = s.eng
	cache := s.cache
	s.mu.RUnlock()
	const route = "/predict"
	wantIval := wantIntervals(rq)
	if pc.eng.Chain() == nil {
		resp := engineResponse(pc.eng.MapOnly(pc.px))
		body := marshalFlavor(resp, degenerateBand(resp.Mbps), wantIval)
		if body == nil {
			s.m.nonFinite.Inc()
			writeError(w, http.StatusInternalServerError, "prediction is not finite")
			return
		}
		s.m.tierServed.With(route, resp.Source).Inc()
		annotatePredict(r.Context(), resp.Tier, resp.Source, "off")
		writeJSONBytes(w, http.StatusOK, body)
		return
	}
	if cache == nil {
		resp, bd := pc.computePredict()
		body := marshalFlavor(resp, bd, wantIval)
		if body == nil {
			s.m.nonFinite.Inc()
			writeError(w, http.StatusInternalServerError, "prediction is not finite")
			return
		}
		s.m.tierServed.With(route, resp.Source).Inc()
		annotatePredict(r.Context(), resp.Tier, resp.Source, "off")
		writeJSONBytes(w, http.StatusOK, body)
		return
	}
	resp, body, outcome := cache.run(quantizeKey(pc.px, pc.speedPtr(), pc.bearingPtr()), pc, wantIval)
	if outcome == outcomeInvalid || body == nil {
		s.m.nonFinite.Inc()
		writeError(w, http.StatusInternalServerError, "prediction is not finite")
		return
	}
	// The handler owns the counting identity: a 200 is exactly one of a
	// published model walk (miss), a hit, or an uncached recompute.
	switch outcome {
	case outcomeHit:
		s.m.cacheHits.Inc()
	case outcomeMiss:
		s.m.cacheMisses.Inc()
		s.m.tierServed.With(route, resp.Source).Inc()
	case outcomeUncached:
		s.m.cacheUncached.Inc()
	}
	annotatePredict(r.Context(), resp.Tier, resp.Source, outcome.String())
	writeJSONBytes(w, http.StatusOK, body)
}

// batchQueryJSON is one query of the POST /predict/batch request body.
// Optional fields use pointers so "absent" (demote to a smaller tier)
// stays distinct from zero.
type batchQueryJSON struct {
	Lat     float64  `json:"lat"`
	Lon     float64  `json:"lon"`
	Speed   *float64 `json:"speed"`
	Bearing *float64 `json:"bearing"`
}

// maxBatchQueries bounds one /predict/batch request (the request-size
// middleware bounds the bytes; this bounds the work).
const maxBatchQueries = 4096

// decodeBatchQueries parses the request body in whichever of the two
// negotiated formats the Content-Type names: the binary columnar frame
// (wire.ContentType) or the JSON array default. Both decode to
// wire.Query rows.
func decodeBatchQueries(r *http.Request) ([]wire.Query, string) {
	if r.Header.Get("Content-Type") == wire.ContentType {
		body, err := io.ReadAll(r.Body)
		if err != nil {
			return nil, "unreadable request body"
		}
		qs, err := wire.DecodeQueries(body, maxBatchQueries)
		if err != nil {
			return nil, err.Error()
		}
		return qs, ""
	}
	var jq []batchQueryJSON
	if err := json.NewDecoder(r.Body).Decode(&jq); err != nil {
		return nil, "body must be a JSON array of {lat, lon[, speed][, bearing]} queries"
	}
	qs := make([]wire.Query, len(jq))
	for i, q := range jq {
		qs[i] = wire.Query{Lat: q.Lat, Lon: q.Lon, Speed: q.Speed, Bearing: q.Bearing}
	}
	return qs, ""
}

func (s *Server) handlePredictBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", "POST")
		writeError(w, http.StatusMethodNotAllowed, "method not allowed")
		return
	}
	queries, decodeErr := decodeBatchQueries(r)
	if decodeErr != "" {
		writeError(w, http.StatusBadRequest, decodeErr)
		return
	}
	if len(queries) == 0 {
		writeError(w, http.StatusBadRequest, "empty batch")
		return
	}
	if len(queries) > maxBatchQueries {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("batch of %d exceeds the %d-query limit", len(queries), maxBatchQueries))
		return
	}

	pxs := make([]geo.Pixel, len(queries))
	speeds := make([]*float64, len(queries))
	bearings := make([]*float64, len(queries))
	for i := range queries {
		bq := &queries[i]
		if err := checkRange(bq.Lat, "lat", -90, 90); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("query %d: %s", i, err))
			return
		}
		if err := checkRange(bq.Lon, "lon", -180, 180); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("query %d: %s", i, err))
			return
		}
		if bq.Speed != nil {
			if err := checkRange(*bq.Speed, "speed (km/h)", 0, 500); err != nil {
				writeError(w, http.StatusBadRequest, fmt.Sprintf("query %d: %s", i, err))
				return
			}
		}
		if bq.Bearing != nil {
			if err := checkRange(*bq.Bearing, "bearing (degrees)", -360, 360); err != nil {
				writeError(w, http.StatusBadRequest, fmt.Sprintf("query %d: %s", i, err))
				return
			}
		}
		pxs[i] = geo.Pixelize(geo.LatLon{Lat: bq.Lat, Lon: bq.Lon}, geo.DefaultZoom)
		speeds[i], bearings[i] = bq.Speed, bq.Bearing
	}

	// The response format is chosen by Accept plus the intervals query
	// parameter — independent of the request format, so a binary sender
	// can still read JSON. Binary needs an exact Accept match on one of
	// the two frame content types; an interval Accept (or ?intervals=1)
	// selects the interval columns / JSON fields.
	accept := r.Header.Get("Accept")
	binary := accept == wire.ContentType || accept == wire.ContentTypeIntervals
	wantIval := accept == wire.ContentTypeIntervals || wantIntervals(r.URL.RawQuery)
	eng := s.Engine()
	var preds []engine.Prediction
	if wantIval {
		preds = eng.PredictIntervalBatch(pxs, speeds, bearings)
	} else {
		preds = eng.PredictBatch(pxs, speeds, bearings)
	}
	s.finishBatch(w, preds, binary, wantIval)
}

// finishBatch validates and publishes one batch answer. Per-query tier
// counters are incremented only once the whole batch is known to be
// servable, so counters never include predictions that were never sent.
func (s *Server) finishBatch(w http.ResponseWriter, preds []engine.Prediction, binary, wantIval bool) {
	for i := range preds {
		if !preds[i].Finite() {
			s.m.nonFinite.Inc()
			writeError(w, http.StatusInternalServerError, fmt.Sprintf("query %d: prediction is not finite", i))
			return
		}
	}
	for i := range preds {
		s.m.tierServed.With("/predict/batch", preds[i].Source).Inc()
	}
	if binary {
		rs := make([]wire.Result, len(preds))
		for i := range preds {
			p := &preds[i]
			rs[i] = wire.Result{
				Mbps:        p.Mbps,
				Class:       p.Class,
				Source:      p.Source,
				Tier:        p.Tier,
				Degraded:    p.Degraded,
				Missing:     p.Missing,
				P10:         p.P10,
				P90:         p.P90,
				HasInterval: p.HasInterval,
			}
		}
		bufp := batchBufPool.Get().(*[]byte)
		var b []byte
		var err error
		ct := wireCT
		if wantIval {
			b, err = wire.AppendResultsIntervals((*bufp)[:0], rs)
			ct = wireIvalCT
		} else {
			b, err = wire.AppendResults((*bufp)[:0], rs)
		}
		if err != nil {
			batchBufPool.Put(bufp)
			writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
		w.Header()["Content-Type"] = ct
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(b)
		*bufp = b[:0]
		batchBufPool.Put(bufp)
		return
	}
	// Render the array with the hand-rolled encoder — byte-identical to
	// json.Encoder of the response structs — through a pooled buffer.
	bufp := batchBufPool.Get().(*[]byte)
	b := append((*bufp)[:0], '[')
	for i := range preds {
		if i > 0 {
			b = append(b, ',')
		}
		resp := engineResponse(preds[i])
		if wantIval {
			b = appendPredictIntervalResponse(b, intervalResponse(resp, bandOf(preds[i])))
		} else {
			b = appendPredictResponse(b, resp)
		}
	}
	b = append(b, ']', '\n')
	writeJSONBytes(w, http.StatusOK, b)
	*bufp = b[:0]
	batchBufPool.Put(bufp)
}

// wireCT / wireIvalCT are the shared Content-Type header values of
// binary batch responses (see jsonCT for why they are shared slices).
var (
	wireCT     = []string{wire.ContentType}
	wireIvalCT = []string{wire.ContentTypeIntervals}
)
