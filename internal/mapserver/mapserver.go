// Package mapserver exposes a 5G throughput map and its companion ML
// model over HTTP — the service side of the paper's Fig 4 scenario, where
// "UEs automatically download 5G throughput maps with ML models based on
// their geographic locations" (§2.3), and of the user-carrier
// collaborative platform of §8.2.
//
// Routes:
//
//	GET /healthz          liveness probe
//	GET /map.svg          the Fig 3c heatmap as SVG
//	GET /cells.json       per-cell statistics as JSON
//	GET /model            the downloadable predictor (gob payload)
//	GET /predict?lat=..&lon=..&speed=..&bearing=..
//	                      server-side throughput prediction as JSON
package mapserver

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strconv"

	"lumos5g"
	"lumos5g/internal/geo"
)

// Server bundles the published artifacts.
type Server struct {
	tm   *lumos5g.ThroughputMap
	pred *lumos5g.Predictor
	mux  *http.ServeMux
}

// New creates a handler for the given map and (optionally nil) predictor.
// The predictor must use the L or L+M feature group: those are the only
// groups whose features a bare /predict query can supply.
func New(tm *lumos5g.ThroughputMap, pred *lumos5g.Predictor) (*Server, error) {
	if tm == nil {
		return nil, fmt.Errorf("mapserver: nil throughput map")
	}
	if pred != nil {
		if g := pred.Group(); g != lumos5g.GroupL && g != lumos5g.GroupLM {
			return nil, fmt.Errorf("mapserver: /predict supports L or L+M predictors, not %s", g)
		}
	}
	s := &Server{tm: tm, pred: pred, mux: http.NewServeMux()}
	s.mux.HandleFunc("/healthz", s.handleHealth)
	s.mux.HandleFunc("/map.svg", s.handleSVG)
	s.mux.HandleFunc("/cells.json", s.handleCells)
	s.mux.HandleFunc("/model", s.handleModel)
	s.mux.HandleFunc("/predict", s.handlePredict)
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, `{"ok":true,"cells":%d}`, len(s.tm.Cells))
}

func (s *Server) handleSVG(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "image/svg+xml")
	_, _ = w.Write([]byte(s.tm.RenderSVG(6)))
}

// cellJSON is the wire form of one map cell.
type cellJSON struct {
	Col        int     `json:"col"`
	Row        int     `json:"row"`
	MeanMbps   float64 `json:"mean_mbps"`
	MedianMbps float64 `json:"median_mbps"`
	CV         float64 `json:"cv"`
	N          int     `json:"n"`
	NRFraction float64 `json:"nr_fraction"`
}

func (s *Server) handleCells(w http.ResponseWriter, _ *http.Request) {
	cells := s.tm.SortedCells()
	out := make([]cellJSON, len(cells))
	for i, c := range cells {
		out[i] = cellJSON{
			Col: c.Key.Col, Row: c.Key.Row,
			MeanMbps: c.MeanMbps, MedianMbps: c.MedianMbps,
			CV: c.CV, N: c.N, NRFraction: c.NRFraction,
		}
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(out)
}

func (s *Server) handleModel(w http.ResponseWriter, _ *http.Request) {
	if s.pred == nil {
		http.Error(w, "no model published", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition", `attachment; filename="lumos5g-model.gob"`)
	if err := s.pred.Save(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// predictResponse is the /predict wire form.
type predictResponse struct {
	Mbps  float64 `json:"mbps"`
	Class string  `json:"class"`
	Group string  `json:"group"`
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	if s.pred == nil {
		http.Error(w, "no model published", http.StatusNotFound)
		return
	}
	q := r.URL.Query()
	lat, err1 := strconv.ParseFloat(q.Get("lat"), 64)
	lon, err2 := strconv.ParseFloat(q.Get("lon"), 64)
	if err1 != nil || err2 != nil {
		http.Error(w, "lat and lon are required floats", http.StatusBadRequest)
		return
	}
	px := geo.Pixelize(geo.LatLon{Lat: lat, Lon: lon}, geo.DefaultZoom)

	// Assemble the feature vector by name so the handler stays correct
	// if the group's column layout evolves.
	vals := map[string]float64{
		"pixel_x": float64(px.X),
		"pixel_y": float64(px.Y),
	}
	if s.pred.Group() == lumos5g.GroupLM {
		speed, err := strconv.ParseFloat(q.Get("speed"), 64)
		if err != nil {
			http.Error(w, "speed (km/h) is required for L+M models", http.StatusBadRequest)
			return
		}
		bearing, err := strconv.ParseFloat(q.Get("bearing"), 64)
		if err != nil {
			http.Error(w, "bearing (degrees) is required for L+M models", http.StatusBadRequest)
			return
		}
		rad := math.Pi / 180
		vals["moving_speed"] = speed
		vals["compass_sin"] = math.Sin(bearing * rad)
		vals["compass_cos"] = math.Cos(bearing * rad)
	}
	names := s.pred.FeatureNames()
	x := make([]float64, len(names))
	for i, n := range names {
		v, ok := vals[n]
		if !ok {
			http.Error(w, "model requires unsupported feature "+n, http.StatusInternalServerError)
			return
		}
		x[i] = v
	}
	mbps := s.pred.Predict(x)
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(predictResponse{
		Mbps:  mbps,
		Class: lumos5g.ClassOf(mbps).String(),
		Group: s.pred.Group().String(),
	})
}
