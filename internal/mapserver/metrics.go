package mapserver

// Serving-path observability. One obs.Registry per Server owns every
// counter the serving path produces; /metrics renders it as Prometheus
// text and /healthz reads the same instruments back (the
// single-bookkeeping rule — there is no second tally to drift).
//
// Counter ownership is arranged so an exact audit identity holds for
// the single-prediction route:
//
//	lumos_http_requests_total{route="/predict",code="200"}
//	  = Σ_tier lumos_predict_tier_served_total{route="/predict",tier}
//	  + lumos_predict_cache_hits_total
//	  + lumos_predict_cache_uncached_total
//
// because every 200 from /predict is exactly one of: a model walk the
// handler published (tier_served), a cache hit, or an uncached
// recompute behind an abandoned entry. The handler is the only writer
// of all three, in the same request that the middleware counts.

import (
	"context"
	"encoding/json"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"lumos5g/internal/obs"
)

// serverMetrics is the instrument set of one Server.
type serverMetrics struct {
	reg *obs.Registry

	// Request path (written by withObs).
	requests *obs.CounterVec   // lumos_http_requests_total{route,code}
	latency  *obs.HistogramVec // lumos_http_request_duration_seconds{route}
	inflight *obs.GaugeVec     // lumos_http_in_flight_requests{route}

	// Prediction serving (written by the predict handlers).
	tierServed  *obs.CounterVec   // lumos_predict_tier_served_total{route,tier}
	tierLatency *obs.HistogramVec // lumos_predict_tier_duration_seconds{tier}
	nonFinite   *obs.Counter      // lumos_predict_nonfinite_total
	shed        *obs.Counter      // lumos_shed_total (written by withShed)

	// Prediction cache (hit/miss/uncached written by the handler on the
	// getOrCompute outcome; evictions/abandoned by the cache's hooks).
	cacheHits      *obs.Counter
	cacheMisses    *obs.Counter
	cacheEvictions *obs.Counter
	cacheUncached  *obs.Counter
	cacheAbandoned *obs.Counter

	// Model lifecycle (written by SetChain / ReloadModelFile).
	reloads         *obs.Counter
	reloadsRejected *obs.Counter

	// Child-instrument caches for the request path. obs vectors key
	// children on a joined label string, so every With() on a
	// multi-label vector allocates the key; the request path instead
	// resolves its children once per (route, code) / route and reuses
	// the cached pointers (obs instruments are safe for concurrent use).
	childMu     sync.RWMutex
	reqChildren map[routeCode]*obs.Counter
	routeObs    map[string]*routeInstruments
}

// routeCode keys the cached lumos_http_requests_total children.
type routeCode struct {
	route string
	code  int
}

// routeInstruments holds one route's per-request instruments, resolved
// once so the hot path does no vector lookups.
type routeInstruments struct {
	latency  *obs.Histogram
	inflight *obs.Gauge
}

// requestCounter returns the requests_total child for (route, code),
// resolving and caching it on first use. Steady-state lookups are a
// read-locked map probe with no allocations.
func (m *serverMetrics) requestCounter(route string, code int) *obs.Counter {
	k := routeCode{route: route, code: code}
	m.childMu.RLock()
	c := m.reqChildren[k]
	m.childMu.RUnlock()
	if c != nil {
		return c
	}
	c = m.requests.With(route, statusLabel(code))
	m.childMu.Lock()
	m.reqChildren[k] = c
	m.childMu.Unlock()
	return c
}

// routeInstruments returns the cached latency/in-flight instruments for
// a (normalized) route.
func (m *serverMetrics) routeInstruments(route string) *routeInstruments {
	m.childMu.RLock()
	ri := m.routeObs[route]
	m.childMu.RUnlock()
	if ri != nil {
		return ri
	}
	ri = &routeInstruments{latency: m.latency.With(route), inflight: m.inflight.With(route)}
	m.childMu.Lock()
	m.routeObs[route] = ri
	m.childMu.Unlock()
	return ri
}

// statusLabel renders an HTTP status code as its metrics label without
// allocating for the codes this server actually produces
// (strconv.Itoa only caches values below 100).
func statusLabel(code int) string {
	switch code {
	case http.StatusOK:
		return "200"
	case http.StatusBadRequest:
		return "400"
	case http.StatusNotFound:
		return "404"
	case http.StatusMethodNotAllowed:
		return "405"
	case http.StatusRequestEntityTooLarge:
		return "413"
	case http.StatusInternalServerError:
		return "500"
	case http.StatusServiceUnavailable:
		return "503"
	}
	return strconv.Itoa(code)
}

func newServerMetrics(s *Server) *serverMetrics {
	r := obs.NewRegistry()
	m := &serverMetrics{
		reg: r,
		requests: r.NewCounterVec("lumos_http_requests_total",
			"HTTP requests by route and status code.", "route", "code"),
		latency: r.NewHistogramVec("lumos_http_request_duration_seconds",
			"End-to-end request latency by route.", obs.DefLatencyBuckets, "route"),
		inflight: r.NewGaugeVec("lumos_http_in_flight_requests",
			"Requests currently being served, by route.", "route"),
		tierServed: r.NewCounterVec("lumos_predict_tier_served_total",
			"Predictions published by the handler, by route and serving tier "+
				"(chain tier name, or map-cell/map-mean for model-less serving).",
			"route", "tier"),
		tierLatency: r.NewHistogramVec("lumos_predict_tier_duration_seconds",
			"Fallback-chain walk latency by the tier that answered.",
			obs.DefLatencyBuckets, "tier"),
		nonFinite: r.NewCounter("lumos_predict_nonfinite_total",
			"Predictions rejected before the wire because the value was NaN or infinite."),
		shed: r.NewCounter("lumos_shed_total",
			"Requests shed with 503 because in-flight work exceeded the configured bound."),
		cacheHits: r.NewCounter("lumos_predict_cache_hits_total",
			"Prediction-cache hits (no model walk)."),
		cacheMisses: r.NewCounter("lumos_predict_cache_misses_total",
			"Prediction-cache misses computed and stored by a leader."),
		cacheEvictions: r.NewCounter("lumos_predict_cache_evictions_total",
			"Prediction-cache LRU evictions."),
		cacheUncached: r.NewCounter("lumos_predict_cache_uncached_total",
			"Predictions recomputed uncached behind an abandoned cache entry."),
		cacheAbandoned: r.NewCounter("lumos_predict_cache_abandoned_total",
			"Cache entries abandoned because the leader failed mid-compute."),
		reloads: r.NewCounter("lumos_model_reloads_total",
			"Successful model hot swaps."),
		reloadsRejected: r.NewCounter("lumos_model_reloads_rejected_total",
			"Model artifacts rejected on reload (previous model kept serving)."),
		reqChildren: map[routeCode]*obs.Counter{},
		routeObs:    map[string]*routeInstruments{},
	}
	r.NewGaugeFunc("lumos_predict_cache_entries",
		"Entries in the current prediction-cache generation.",
		func() float64 { return float64(s.cacheEntries()) })
	r.NewGaugeFunc("lumos_map_cells",
		"Cells in the published throughput map.",
		func() float64 { return float64(len(s.tm.Cells)) })
	r.NewGaugeFunc("lumos_model_serving",
		"1 when a fallback chain is serving, 0 when the server is map-only.",
		func() float64 {
			if s.Chain() != nil {
				return 1
			}
			return 0
		})
	return m
}

// knownRoutes is the closed route label set. Unknown paths collapse to
// "other" so a URL-scanning client cannot explode the label cardinality.
var knownRoutes = map[string]string{
	"/healthz":       "/healthz",
	"/map.svg":       "/map.svg",
	"/cells.json":    "/cells.json",
	"/model":         "/model",
	"/predict":       "/predict",
	"/predict/batch": "/predict/batch",
	"/ingest":        "/ingest",
	"/metrics":       "/metrics",
}

func normalizeRoute(path string) string {
	if r, ok := knownRoutes[path]; ok {
		return r
	}
	return "other"
}

// statusWriter captures the status code and body size a handler (or the
// timeout/recovery middleware above it) actually sent.
type statusWriter struct {
	http.ResponseWriter
	code  int
	bytes int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// Unwrap lets http.ResponseController reach the underlying writer.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

func (w *statusWriter) status() int {
	if w.code == 0 {
		return http.StatusOK
	}
	return w.code
}

// reqIDSeq numbers requests within the process; the prefix (process
// start time in base36) keeps IDs from different server lifetimes
// distinct in aggregated logs.
var (
	reqIDSeq    atomic.Uint64
	reqIDPrefix = strconv.FormatInt(time.Now().UnixNano(), 36)
)

func nextRequestID() string {
	return reqIDPrefix + "-" + strconv.FormatUint(reqIDSeq.Add(1), 10)
}

// reqLog carries one request's log annotations from the handler back to
// the access-log writer. The mutex matters: under http.TimeoutHandler
// the handler runs on a separate goroutine, so an annotation can race
// the timed-out request's log write.
type reqLog struct {
	id string

	mu     sync.Mutex
	tier   int // -2 until annotated
	source string
	cache  string
}

type reqLogKey struct{}

// requestLogFrom returns the request's log record, nil when request
// logging is disabled.
func requestLogFrom(ctx context.Context) *reqLog {
	lg, _ := ctx.Value(reqLogKey{}).(*reqLog)
	return lg
}

// annotatePredict records which tier answered and how the cache was
// involved, for the structured request log.
func annotatePredict(ctx context.Context, tier int, source, cache string) {
	lg := requestLogFrom(ctx)
	if lg == nil {
		return
	}
	lg.mu.Lock()
	lg.tier, lg.source, lg.cache = tier, source, cache
	lg.mu.Unlock()
}

// accessLogLine is the JSON wire form of one request-log line.
type accessLogLine struct {
	Time   string  `json:"time"`
	ID     string  `json:"id"`
	Method string  `json:"method"`
	Path   string  `json:"path"`
	Query  string  `json:"query,omitempty"`
	Status int     `json:"status"`
	DurMS  float64 `json:"duration_ms"`
	Bytes  int64   `json:"bytes"`
	Tier   *int    `json:"tier,omitempty"`
	Source string  `json:"source,omitempty"`
	Cache  string  `json:"cache,omitempty"`
}

// swPool recycles the statusWriter wrappers of withObs. A wrapper is
// only ever referenced synchronously below withObs in the middleware
// stack (http.TimeoutHandler hands its inner handler a separate
// buffered writer), so returning it to the pool after the counters are
// recorded is safe.
var swPool = sync.Pool{New: func() any { return new(statusWriter) }}

// withObs is the outermost middleware: it counts and times every
// request (including the 500s and 503s manufactured by the recovery and
// timeout layers beneath it), threads a request ID through the context,
// and emits one structured JSON log line per request when logging is on.
func (s *Server) withObs(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ri := s.m.routeInstruments(normalizeRoute(r.URL.Path))
		ri.inflight.Add(1)
		defer ri.inflight.Add(-1)

		sw := swPool.Get().(*statusWriter)
		sw.ResponseWriter, sw.code, sw.bytes = w, 0, 0
		var lg *reqLog
		if s.logw != nil {
			lg = &reqLog{id: nextRequestID(), tier: -2}
			w.Header().Set("X-Request-Id", lg.id)
			r = r.WithContext(context.WithValue(r.Context(), reqLogKey{}, lg))
		}
		start := time.Now()
		next.ServeHTTP(sw, r)
		dur := time.Since(start)

		code, bytes := sw.status(), sw.bytes
		sw.ResponseWriter = nil
		swPool.Put(sw)
		s.m.requestCounter(normalizeRoute(r.URL.Path), code).Inc()
		ri.latency.Observe(dur.Seconds())
		if lg != nil {
			s.writeAccessLog(lg, r, code, bytes, dur)
		}
	})
}

func (s *Server) writeAccessLog(lg *reqLog, r *http.Request, code int, bytes int64, dur time.Duration) {
	line := accessLogLine{
		Time:   time.Now().UTC().Format(time.RFC3339Nano),
		ID:     lg.id,
		Method: r.Method,
		Path:   r.URL.Path,
		Query:  r.URL.RawQuery,
		Status: code,
		DurMS:  float64(dur) / float64(time.Millisecond),
		Bytes:  bytes,
	}
	lg.mu.Lock()
	if lg.tier != -2 {
		tier := lg.tier
		line.Tier, line.Source, line.Cache = &tier, lg.source, lg.cache
	}
	lg.mu.Unlock()
	b, err := json.Marshal(line)
	if err != nil {
		return
	}
	b = append(b, '\n')
	s.logmu.Lock()
	_, _ = s.logw.Write(b)
	s.logmu.Unlock()
}

// handleMetrics serves the Prometheus text exposition of the server's
// registry.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", obs.ContentType)
	_ = s.m.reg.WritePrometheus(w)
}

// Metrics returns the server's observability registry, for embedding
// servers that want to render it elsewhere or register their own
// instruments alongside.
func (s *Server) Metrics() *obs.Registry { return s.m.reg }

// RouteLatencyQuantile estimates the q-quantile (0..1) of the
// end-to-end request latency for one route, in seconds. NaN until the
// route has served at least one request.
func (s *Server) RouteLatencyQuantile(route string, q float64) float64 {
	return s.m.latency.With(normalizeRoute(route)).Quantile(q)
}

// cacheEntries reads the current cache generation's size (0 when
// caching is disabled or no model serves).
func (s *Server) cacheEntries() int {
	s.mu.RLock()
	cache := s.cache
	s.mu.RUnlock()
	if cache == nil {
		return 0
	}
	return cache.size()
}
