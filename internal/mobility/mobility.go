// Package mobility generates the kinematics of measurement passes: walking
// and driving speed profiles along area trajectories (with stops at
// traffic lights and rail crossings), plus the Android-style sensor error
// models — AR(1)-correlated GPS noise with reported accuracy, compass
// noise, and Google-Activity-Recognition-style detected activity — that
// the paper's data-quality pipeline must contend with (§3.1).
package mobility

import (
	"lumos5g/internal/env"
	"lumos5g/internal/geo"
	"lumos5g/internal/radio"
	"lumos5g/internal/rng"
)

// Tick is one second of true (noise-free) UE kinematics.
type Tick struct {
	// Second is the elapsed time since the pass began.
	Second int
	// Arc is the arclength along the trajectory in meters.
	Arc float64
	// Pos is the true position in the area's local frame.
	Pos geo.Point
	// Heading is the true travel bearing in degrees.
	Heading float64
	// SpeedKmh is the true ground speed.
	SpeedKmh float64
	// Mode is the transport mode for this pass.
	Mode radio.MobilityMode
}

// Walking profile constants: the paper's walking speeds hover 0–7 km/h.
const (
	walkMeanKmh = 4.7
	walkStdKmh  = 0.9
	walkMinKmh  = 0.4
	walkMaxKmh  = 7.0
)

// Driving profile constants: 0–45 km/h in the Loop area with stops.
const (
	driveCruiseMeanKmh = 31.0
	driveCruiseStdKmh  = 7.0
	driveMaxKmh        = 45.0
	driveAccelKmhPerS  = 6.5
	stopTriggerMeters  = 12.0
	stopProb           = 0.55
	stopMinSeconds     = 8
	stopMaxSeconds     = 35
)

// maxPassSeconds bounds a pass so a pathological profile cannot loop
// forever.
const maxPassSeconds = 3600

// GeneratePass produces per-second kinematics for one traversal of the
// trajectory. Driving passes slow to a stop near the area's StopPoints
// with probability stopProb (red light / train), mirroring the paper's
// Loop drives where speeds range 0–45 km/h with frequent halts. Loops are
// traversed exactly once.
func GeneratePass(a *env.Area, tr env.Trajectory, mode radio.MobilityMode, src *rng.Source) []Tick {
	if len(tr.Waypoints) == 0 {
		return nil
	}
	if mode == radio.Stationary {
		// Stationary sessions hold one spot for 60 s.
		pos := tr.At(0)
		heading := tr.HeadingAt(0)
		ticks := make([]Tick, 60)
		for sec := range ticks {
			ticks[sec] = Tick{Second: sec, Pos: pos, Heading: heading, Mode: mode}
		}
		return ticks
	}
	total := tr.Length()
	if total <= 0 {
		return nil
	}

	// Resolve stop points to arclengths for driving.
	var stops []float64
	if mode == radio.Driving {
		for _, f := range a.StopPoints {
			stops = append(stops, f*total)
		}
	}

	var ticks []Tick
	arc := 0.0
	speed := 0.0 // km/h
	// Per-pass base speeds: a walker keeps a fairly steady personal pace
	// across one pass (tick-level jitter is small), which is what makes
	// repeated passes of a trajectory comparable position-by-position.
	walkBase := clampF(src.NormMeanStd(walkMeanKmh, walkStdKmh), 2.5, walkMaxKmh-0.5)
	cruise := clampF(src.NormMeanStd(driveCruiseMeanKmh, driveCruiseStdKmh), 10, driveMaxKmh)
	stopLeft := 0
	passedStop := make([]bool, len(stops))

	for sec := 0; sec < maxPassSeconds && arc < total; sec++ {
		switch mode {
		case radio.Walking:
			speed = clampF(src.NormMeanStd(walkBase, 0.35), walkMinKmh, walkMaxKmh)
			// Brief pauses (looking around, waiting at a crossing).
			if src.Bool(0.01) {
				speed = 0
			}
		case radio.Driving:
			if stopLeft > 0 {
				stopLeft--
				speed = 0
			} else {
				// Check whether a stop point is just ahead.
				trigger := false
				for i, s := range stops {
					if !passedStop[i] && arc <= s && s-arc < stopTriggerMeters {
						passedStop[i] = true
						if src.Bool(stopProb) {
							trigger = true
						}
					}
				}
				if trigger {
					stopLeft = stopMinSeconds + src.Intn(stopMaxSeconds-stopMinSeconds+1)
					speed = 0
				} else {
					// Accelerate toward cruise with jitter.
					target := clampF(cruise+src.NormMeanStd(0, 2.5), 0, driveMaxKmh)
					if speed < target {
						speed = minF(speed+driveAccelKmhPerS, target)
					} else {
						speed = maxF(speed-driveAccelKmhPerS, target)
					}
				}
			}
		}

		pos := tr.At(arc)
		heading := tr.HeadingAt(arc)
		ticks = append(ticks, Tick{
			Second:   sec,
			Arc:      arc,
			Pos:      pos,
			Heading:  heading,
			SpeedKmh: speed,
			Mode:     mode,
		})
		arc += speed / 3.6 // km/h → m/s over one second
	}
	return ticks
}

func clampF(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
