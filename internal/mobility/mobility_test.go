package mobility

import (
	"math"
	"testing"

	"lumos5g/internal/env"
	"lumos5g/internal/geo"
	"lumos5g/internal/radio"
	"lumos5g/internal/rng"
)

func TestWalkingPassCoversTrajectory(t *testing.T) {
	a := env.Airport()
	tr := a.Trajectories[0]
	ticks := GeneratePass(a, tr, radio.Walking, rng.New(1))
	if len(ticks) == 0 {
		t.Fatal("no ticks")
	}
	// ~340 m at ~4.7 km/h ≈ 260 s; the paper says ~200 s sessions at a
	// brisker pace — accept a broad window.
	if len(ticks) < 150 || len(ticks) > 500 {
		t.Fatalf("walking pass %d s, expected a few hundred", len(ticks))
	}
	last := ticks[len(ticks)-1]
	if last.Arc < tr.Length()-10 {
		t.Fatalf("pass ended at %v of %v m", last.Arc, tr.Length())
	}
	for _, tk := range ticks {
		if tk.SpeedKmh < 0 || tk.SpeedKmh > 7.01 {
			t.Fatalf("walking speed out of 0–7 km/h: %v", tk.SpeedKmh)
		}
		if tk.Mode != radio.Walking {
			t.Fatal("mode mislabeled")
		}
	}
}

func TestTicksMonotone(t *testing.T) {
	a := env.Intersection()
	ticks := GeneratePass(a, a.Trajectories[3], radio.Walking, rng.New(2))
	for i := 1; i < len(ticks); i++ {
		if ticks[i].Arc < ticks[i-1].Arc {
			t.Fatal("arclength must be non-decreasing")
		}
		if ticks[i].Second != ticks[i-1].Second+1 {
			t.Fatal("seconds must increase by 1")
		}
	}
}

func TestDrivingPassSpeedsAndStops(t *testing.T) {
	a := env.Loop()
	ticks := GeneratePass(a, a.Trajectories[0], radio.Driving, rng.New(3))
	if len(ticks) == 0 {
		t.Fatal("no ticks")
	}
	var maxSpeed float64
	stopped := 0
	for _, tk := range ticks {
		if tk.SpeedKmh < 0 || tk.SpeedKmh > 45.01 {
			t.Fatalf("driving speed out of 0–45 km/h: %v", tk.SpeedKmh)
		}
		if tk.SpeedKmh > maxSpeed {
			maxSpeed = tk.SpeedKmh
		}
		if tk.SpeedKmh == 0 {
			stopped++
		}
	}
	if maxSpeed < 15 {
		t.Fatalf("driving never got fast: max %v", maxSpeed)
	}
	// Across several seeds, at least one pass must include a stop.
	totalStops := stopped
	for seed := uint64(4); seed < 10; seed++ {
		for _, tk := range GeneratePass(a, a.Trajectories[0], radio.Driving, rng.New(seed)) {
			if tk.SpeedKmh == 0 {
				totalStops++
			}
		}
	}
	if totalStops == 0 {
		t.Fatal("no stops at lights across 7 driving passes")
	}
}

func TestDrivingFasterThanWalking(t *testing.T) {
	a := env.Loop()
	walk := GeneratePass(a, a.Trajectories[0], radio.Walking, rng.New(5))
	drive := GeneratePass(a, a.Trajectories[0], radio.Driving, rng.New(5))
	if len(drive) >= len(walk) {
		t.Fatalf("driving (%d s) should finish faster than walking (%d s)", len(drive), len(walk))
	}
}

func TestStationaryPass(t *testing.T) {
	a := env.Airport()
	ticks := GeneratePass(a, a.Trajectories[0], radio.Stationary, rng.New(6))
	if len(ticks) != 60 {
		t.Fatalf("stationary session = %d s, want 60", len(ticks))
	}
	for _, tk := range ticks {
		if tk.SpeedKmh != 0 || tk.Arc != 0 {
			t.Fatal("stationary UE should not move")
		}
	}
}

func TestGeneratePassDeterministic(t *testing.T) {
	a := env.Airport()
	t1 := GeneratePass(a, a.Trajectories[0], radio.Walking, rng.New(42))
	t2 := GeneratePass(a, a.Trajectories[0], radio.Walking, rng.New(42))
	if len(t1) != len(t2) {
		t.Fatal("same seed, different pass lengths")
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("tick %d differs", i)
		}
	}
}

func TestEmptyTrajectory(t *testing.T) {
	a := env.Airport()
	if ticks := GeneratePass(a, env.Trajectory{}, radio.Walking, rng.New(1)); ticks != nil {
		t.Fatal("empty trajectory should produce no ticks")
	}
}

func TestGPSModelErrorScale(t *testing.T) {
	src := rng.New(7)
	g := NewGPSModel(src)
	truePos := geo.Point{X: 100, Y: 100}
	var sumErr float64
	n := 5000
	badAcc := 0
	for i := 0; i < n; i++ {
		meas, acc := g.Observe(truePos)
		sumErr += meas.Dist(truePos)
		if acc > 5 {
			badAcc++
		}
	}
	meanErr := sumErr / float64(n)
	if meanErr < 0.5 || meanErr > 5 {
		t.Fatalf("mean GPS error = %v m, want a couple of meters", meanErr)
	}
	// Degraded episodes must occur but stay the minority.
	if badAcc == 0 {
		t.Fatal("no degraded GPS episodes in 5000 s")
	}
	if badAcc > n/3 {
		t.Fatalf("too many degraded samples: %d/%d", badAcc, n)
	}
}

func TestGPSTemporalCorrelation(t *testing.T) {
	g := NewGPSModel(rng.New(8))
	truePos := geo.Point{}
	var prev geo.Point
	var jumpSum float64
	n := 2000
	for i := 0; i < n; i++ {
		meas, _ := g.Observe(truePos)
		if i > 0 {
			jumpSum += meas.Dist(prev)
		}
		prev = meas
	}
	meanJump := jumpSum / float64(n-1)
	// AR(1) with rho=0.85 means successive fixes move much less than the
	// full error magnitude.
	if meanJump > 3 {
		t.Fatalf("GPS fixes jump %v m/s — not temporally correlated", meanJump)
	}
}

func TestCompassModel(t *testing.T) {
	c := NewCompassModel(rng.New(9))
	var sumAbs float64
	n := 2000
	for i := 0; i < n; i++ {
		meas, acc := c.Observe(90)
		d := geo.AngularDiff(meas, 90)
		sumAbs += d
		if acc <= 0 {
			t.Fatal("accuracy must be positive")
		}
		if meas < 0 || meas >= 360 {
			t.Fatalf("heading not normalized: %v", meas)
		}
	}
	mean := sumAbs / float64(n)
	if mean < 1 || mean > 15 {
		t.Fatalf("mean compass error = %v°, want a few degrees", mean)
	}
}

func TestSpeedNoise(t *testing.T) {
	src := rng.New(10)
	for i := 0; i < 1000; i++ {
		v := SpeedNoise(5, src)
		if v < 0 {
			t.Fatal("speed cannot be negative")
		}
		if math.Abs(v-5) > 3 {
			t.Fatalf("speed noise too large: %v", v)
		}
	}
	if SpeedNoise(0, src) < 0 {
		t.Fatal("zero speed should clamp at 0")
	}
}

func TestDetectedActivity(t *testing.T) {
	if a := DetectedActivity(radio.Walking, 4, nil); a != "walking" {
		t.Fatalf("walking → %s", a)
	}
	if a := DetectedActivity(radio.Driving, 30, nil); a != "in_vehicle" {
		t.Fatalf("driving → %s", a)
	}
	if a := DetectedActivity(radio.Stationary, 0, nil); a != "still" {
		t.Fatalf("stationary → %s", a)
	}
	if a := DetectedActivity(radio.Driving, 0.1, nil); a != "still" {
		t.Fatalf("stopped car → %s", a)
	}
	// With a source, mislabels happen occasionally but rarely.
	src := rng.New(11)
	mislabels := 0
	for i := 0; i < 1000; i++ {
		if DetectedActivity(radio.Walking, 4, src) != "walking" {
			mislabels++
		}
	}
	if mislabels == 0 || mislabels > 100 {
		t.Fatalf("mislabel rate %d/1000, want a few percent", mislabels)
	}
}
