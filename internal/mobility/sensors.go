package mobility

import (
	"math"

	"lumos5g/internal/geo"
	"lumos5g/internal/radio"
	"lumos5g/internal/rng"
)

// GPSModel injects temporally correlated positioning error, mimicking the
// Android Location API. The paper discards samples whose reported GPS
// accuracy exceeds 5 m along the trajectory (§3.1), so the model both
// perturbs positions and reports an accuracy estimate, and occasionally
// enters a degraded episode (urban canyon, indoor drift) whose samples the
// quality filter must drop.
type GPSModel struct {
	src  *rng.Source
	errX float64
	errY float64
	// degradedLeft counts remaining seconds of a bad-GPS episode.
	degradedLeft int
}

// GPS noise parameters.
const (
	gpsSigmaGood  = 1.6  // steady-state error std dev per axis, meters
	gpsSigmaBad   = 7.5  // degraded episodes
	gpsRho        = 0.85 // AR(1) temporal correlation
	gpsBadProb    = 0.004
	gpsBadMinSecs = 15
	gpsBadMaxSecs = 45
)

// NewGPSModel creates a GPS error model with its own random stream.
func NewGPSModel(src *rng.Source) *GPSModel {
	return &GPSModel{src: src}
}

// Observe perturbs a true position and returns the measured position along
// with the accuracy the API would report (meters, 68% circle-ish).
func (g *GPSModel) Observe(truePos geo.Point) (measured geo.Point, accuracy float64) {
	sigma := gpsSigmaGood
	if g.degradedLeft > 0 {
		g.degradedLeft--
		sigma = gpsSigmaBad
	} else if g.src.Bool(gpsBadProb) {
		g.degradedLeft = gpsBadMinSecs + g.src.Intn(gpsBadMaxSecs-gpsBadMinSecs+1)
		sigma = gpsSigmaBad
	}
	innov := sigma * math.Sqrt(1-gpsRho*gpsRho)
	g.errX = gpsRho*g.errX + g.src.NormMeanStd(0, innov)
	g.errY = gpsRho*g.errY + g.src.NormMeanStd(0, innov)
	measured = geo.Point{X: truePos.X + g.errX, Y: truePos.Y + g.errY}
	// Reported accuracy tracks the real error scale with estimation noise,
	// as real GNSS chipsets do.
	accuracy = math.Abs(sigma*1.2 + g.src.NormMeanStd(0, 0.4))
	return measured, accuracy
}

// CompassModel injects bearing noise with a slowly wandering bias, as
// magnetometer-based azimuth readings exhibit.
type CompassModel struct {
	src  *rng.Source
	bias float64
}

const (
	compassNoiseDeg    = 4.0
	compassBiasWalkDeg = 0.3
	compassBiasMaxDeg  = 8.0
)

// NewCompassModel creates a compass error model.
func NewCompassModel(src *rng.Source) *CompassModel {
	return &CompassModel{src: src}
}

// Observe perturbs a true heading and returns the measured heading plus an
// accuracy class (degrees of expected error).
func (c *CompassModel) Observe(trueHeading float64) (measured, accuracy float64) {
	c.bias += c.src.NormMeanStd(0, compassBiasWalkDeg)
	if c.bias > compassBiasMaxDeg {
		c.bias = compassBiasMaxDeg
	}
	if c.bias < -compassBiasMaxDeg {
		c.bias = -compassBiasMaxDeg
	}
	measured = geo.Normalize360(trueHeading + c.bias + c.src.NormMeanStd(0, compassNoiseDeg))
	accuracy = compassNoiseDeg + math.Abs(c.bias)
	return measured, accuracy
}

// SpeedNoise perturbs the reported ground speed the way Location.getSpeed
// does (small multiplicative + additive error, clamped at zero).
func SpeedNoise(trueKmh float64, src *rng.Source) float64 {
	v := trueKmh*(1+src.NormMeanStd(0, 0.05)) + src.NormMeanStd(0, 0.15)
	if v < 0 {
		v = 0
	}
	return v
}

// DetectedActivity mimics Google's Activity Recognition API labels from
// the transport mode and instantaneous speed.
func DetectedActivity(mode radio.MobilityMode, speedKmh float64, src *rng.Source) string {
	// The recognizer occasionally mislabels (~3%).
	if src != nil && src.Bool(0.03) {
		choices := []string{"still", "walking", "in_vehicle", "on_foot", "unknown"}
		return choices[src.Intn(len(choices))]
	}
	switch mode {
	case radio.Stationary:
		return "still"
	case radio.Walking:
		if speedKmh < 0.3 {
			return "still"
		}
		return "walking"
	case radio.Driving:
		if speedKmh < 0.3 {
			return "still"
		}
		return "in_vehicle"
	}
	return "unknown"
}
