// Package core is the Lumos5G framework itself (§5): it composes feature
// groups with ML models, runs the train/evaluate pipeline behind Tables
// 7–9, builds 5G throughput maps (Figs 3c, 6, 9), runs the §6.2
// transferability analysis, and reports GDBT feature importance (Fig 22).
package core

import (
	"fmt"
	"math"

	"lumos5g/internal/dataset"
	"lumos5g/internal/features"
	"lumos5g/internal/ml"
	"lumos5g/internal/ml/forest"
	"lumos5g/internal/ml/gbdt"
	"lumos5g/internal/ml/hm"
	"lumos5g/internal/ml/knn"
	"lumos5g/internal/ml/kriging"
	"lumos5g/internal/ml/nn"
	"lumos5g/internal/stats"
)

// ModelKind selects one of the evaluated predictors.
type ModelKind int

const (
	// ModelKNN is the k-nearest-neighbour baseline.
	ModelKNN ModelKind = iota
	// ModelRF is the random-forest baseline [20].
	ModelRF
	// ModelOK is Ordinary Kriging [26] (L feature group only).
	ModelOK
	// ModelHM is the history-based harmonic mean [38, 64].
	ModelHM
	// ModelGDBT is Lumos5G's gradient boosted decision trees.
	ModelGDBT
	// ModelSeq2Seq is Lumos5G's LSTM encoder–decoder.
	ModelSeq2Seq
	// ModelLSTM is the standard single-shot LSTM baseline ([45], Mei et
	// al.): no decoder, immediate-next-slot prediction only.
	ModelLSTM
)

func (m ModelKind) String() string {
	switch m {
	case ModelKNN:
		return "KNN"
	case ModelRF:
		return "RF"
	case ModelOK:
		return "OK"
	case ModelHM:
		return "HM"
	case ModelGDBT:
		return "GDBT"
	case ModelSeq2Seq:
		return "Seq2Seq"
	case ModelLSTM:
		return "LSTM"
	}
	return "?"
}

// Scale bundles the tunable hyper-parameters so the harness can trade
// fidelity for runtime. The zero value selects sensible scaled-down
// defaults (see EXPERIMENTS.md for the mapping to the paper's settings).
type Scale struct {
	GBDT    gbdt.Config
	RF      forest.Config
	KNN     knn.Config
	Kriging kriging.Config
	Seq2Seq nn.Seq2SeqConfig
	// SeqLen is the Seq2Seq input window (paper: 20).
	SeqLen int
	// SeqTrainCap caps Seq2Seq training windows for tractability;
	// <=0 means 4000.
	SeqTrainCap int
	// TrainFrac is the train split (paper: 0.7).
	TrainFrac float64
	// Seed drives splits and model seeds.
	Seed uint64
}

func (s Scale) withDefaults() Scale {
	if s.SeqLen <= 0 {
		s.SeqLen = features.DefaultSeqLen
	}
	if s.SeqTrainCap <= 0 {
		s.SeqTrainCap = 4000
	}
	if s.TrainFrac <= 0 || s.TrainFrac >= 1 {
		s.TrainFrac = 0.7
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	return s
}

// Result holds one model × feature-group evaluation.
type Result struct {
	Model ModelKind
	Group features.Group
	// Regression metrics (Table 8 / Table 9 top).
	MAE  float64
	RMSE float64
	// Classification metrics (Table 7 / Table 9 bottom).
	WeightedF1 float64
	RecallLow  float64
	// NTest is the number of scored test samples.
	NTest int
	// Err is non-nil when the combination is not applicable (e.g. OK on
	// non-L groups — the paper's "NA" cells).
	Err error
}

func (r Result) String() string {
	if r.Err != nil {
		return fmt.Sprintf("%s/%s: NA (%v)", r.Model, r.Group, r.Err)
	}
	return fmt.Sprintf("%s/%s: MAE=%.0f RMSE=%.0f F1=%.2f recall(low)=%.2f",
		r.Model, r.Group, r.MAE, r.RMSE, r.WeightedF1, r.RecallLow)
}

// scoreAll fills a Result's metrics from aligned predictions and truths.
func scoreAll(res *Result, pred, truth []float64) {
	res.MAE = stats.MAE(pred, truth)
	res.RMSE = stats.RMSE(pred, truth)
	cm := stats.NewConfusionMatrix(ml.NumClasses, ml.ClassesOf(pred), ml.ClassesOf(truth))
	res.WeightedF1 = cm.WeightedF1()
	res.RecallLow = cm.Recall(int(ml.ClassLow))
	res.NTest = len(truth)
}

// Evaluate trains the given model on the feature group over d (70/30
// split) and scores it. HM and Seq2Seq have their own paths because they
// consume history/sequences rather than tabular rows.
func Evaluate(d *dataset.Dataset, g features.Group, kind ModelKind, sc Scale) Result {
	sc = sc.withDefaults()
	res := Result{Model: kind, Group: g}
	switch kind {
	case ModelHM:
		return evaluateHM(d, sc)
	case ModelSeq2Seq:
		return evaluateSeq2Seq(d, g, sc)
	case ModelLSTM:
		return evaluateLSTM(d, g, sc)
	case ModelOK:
		if g != features.GroupL {
			res.Err = kriging.ErrNotLocation
			return res
		}
	}

	m := features.Build(d, g)
	if len(m.X) == 0 {
		res.Err = fmt.Errorf("core: no usable rows for %s on this dataset", g)
		return res
	}
	trainX, trainY, testX, testY := splitMatrix(m, sc.TrainFrac, sc.Seed)

	var reg ml.Regressor
	switch kind {
	case ModelKNN:
		reg = knn.New(sc.KNN)
	case ModelRF:
		cfg := sc.RF
		cfg.Seed = sc.Seed
		reg = forest.New(cfg)
	case ModelOK:
		reg = kriging.New(sc.Kriging)
	case ModelGDBT:
		cfg := sc.GBDT
		cfg.Seed = sc.Seed
		reg = gbdt.New(cfg)
	default:
		res.Err = fmt.Errorf("core: unhandled model %v", kind)
		return res
	}
	if err := reg.Fit(trainX, trainY); err != nil {
		res.Err = err
		return res
	}
	pred := ml.PredictAll(reg, testX)
	scoreAll(&res, pred, testY)
	return res
}

// EvaluateMatrix evaluates a tabular model (KNN, RF, OK, GDBT) on a
// pre-built feature matrix with the standard 70/30 split — used by the
// factor-analysis experiments (Tables 4 and 10) whose feature sets are
// composed ad hoc rather than drawn from the named groups.
func EvaluateMatrix(m *features.Matrix, kind ModelKind, sc Scale) Result {
	sc = sc.withDefaults()
	res := Result{Model: kind}
	if len(m.X) == 0 {
		res.Err = fmt.Errorf("core: empty feature matrix")
		return res
	}
	trainX, trainY, testX, testY := splitMatrix(m, sc.TrainFrac, sc.Seed)
	var reg ml.Regressor
	switch kind {
	case ModelKNN:
		reg = knn.New(sc.KNN)
	case ModelRF:
		cfg := sc.RF
		cfg.Seed = sc.Seed
		reg = forest.New(cfg)
	case ModelOK:
		reg = kriging.New(sc.Kriging)
	case ModelGDBT:
		cfg := sc.GBDT
		cfg.Seed = sc.Seed
		reg = gbdt.New(cfg)
	default:
		res.Err = fmt.Errorf("core: EvaluateMatrix supports tabular models only, not %v", kind)
		return res
	}
	if err := reg.Fit(trainX, trainY); err != nil {
		res.Err = err
		return res
	}
	scoreAll(&res, ml.PredictAll(reg, testX), testY)
	return res
}

// SplitMatrixForTest exposes the deterministic 70/30 split for harness
// code that evaluates custom regressors.
func SplitMatrixForTest(m *features.Matrix, frac float64, seed uint64) (trainX [][]float64, trainY []float64, testX [][]float64, testY []float64) {
	return splitMatrix(m, frac, seed)
}

// splitMatrix splits a feature matrix deterministically.
func splitMatrix(m *features.Matrix, frac float64, seed uint64) (trainX [][]float64, trainY []float64, testX [][]float64, testY []float64) {
	n := len(m.X)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	state := seed
	next := func() uint64 {
		state += 0x9E3779B97F4A7C15
		z := state
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		return z ^ (z >> 31)
	}
	for i := n - 1; i > 0; i-- {
		j := int(next() % uint64(i+1))
		perm[i], perm[j] = perm[j], perm[i]
	}
	nTrain := int(float64(n) * frac)
	for i, idx := range perm {
		if i < nTrain {
			trainX = append(trainX, m.X[idx])
			trainY = append(trainY, m.Y[idx])
		} else {
			testX = append(testX, m.X[idx])
			testY = append(testY, m.Y[idx])
		}
	}
	return
}

// evaluateHM scores the harmonic-mean forecaster over every trace
// (one-step-ahead, no training needed). Its "feature group" is past
// throughput only, as in Table 9's dedicated row.
func evaluateHM(d *dataset.Dataset, sc Scale) Result {
	res := Result{Model: ModelHM, Group: features.GroupC}
	p := hm.New(hm.DefaultWindow)
	var pred, truth []float64
	for _, trace := range d.GroupByTrace() {
		pp, tt := p.PredictSeries(trace, 1)
		pred = append(pred, pp...)
		truth = append(truth, tt...)
	}
	if len(pred) == 0 {
		res.Err = fmt.Errorf("core: no traces for HM")
		return res
	}
	scoreAll(&res, pred, truth)
	return res
}

// evaluateSeq2Seq trains the encoder–decoder on windowed sequences.
func evaluateSeq2Seq(d *dataset.Dataset, g features.Group, sc Scale) Result {
	res := Result{Model: ModelSeq2Seq, Group: g}
	set := features.BuildSequences(d, g, sc.SeqLen, 1)
	if len(set.X) == 0 {
		res.Err = fmt.Errorf("core: no usable sequences for %s", g)
		return res
	}
	train, test := set.SplitTrainTest(sc.TrainFrac, sc.Seed)
	train = train.Subsample(sc.SeqTrainCap, sc.Seed)
	testCap := sc.SeqTrainCap / 2
	if testCap < 500 {
		testCap = 500
	}
	test = test.Subsample(testCap, sc.Seed+1)

	cfg := sc.Seq2Seq
	cfg.InputDim = len(set.Names)
	cfg.OutLen = 1
	cfg.Seed = sc.Seed
	model, err := nn.NewSeq2Seq(cfg)
	if err != nil {
		res.Err = err
		return res
	}
	// Connection-aware groups prime the decoder with the last observed
	// throughput (it is part of their feature contract); other groups
	// must not see throughput history.
	var goTrain []float64
	if g.UsesConnection() {
		goTrain = train.LastY
	}
	if err := model.FitPrimed(train.X, train.Y, goTrain); err != nil {
		res.Err = err
		return res
	}
	pred := make([]float64, len(test.X))
	truth := make([]float64, len(test.X))
	for i := range test.X {
		var goVal *float64
		if g.UsesConnection() {
			goVal = &test.LastY[i]
		}
		out, err := model.PredictPrimed(test.X[i], goVal)
		if err != nil {
			res.Err = err
			return res
		}
		pred[i] = out[0]
		truth[i] = test.Y[i][0]
	}
	scoreAll(&res, pred, truth)
	return res
}

// evaluateLSTM trains the single-shot LSTM baseline on the same windowed
// sequences as Seq2Seq (next-slot targets only).
func evaluateLSTM(d *dataset.Dataset, g features.Group, sc Scale) Result {
	res := Result{Model: ModelLSTM, Group: g}
	set := features.BuildSequences(d, g, sc.SeqLen, 1)
	if len(set.X) == 0 {
		res.Err = fmt.Errorf("core: no usable sequences for %s", g)
		return res
	}
	train, test := set.SplitTrainTest(sc.TrainFrac, sc.Seed)
	train = train.Subsample(sc.SeqTrainCap, sc.Seed)
	testCap := sc.SeqTrainCap / 2
	if testCap < 500 {
		testCap = 500
	}
	test = test.Subsample(testCap, sc.Seed+1)

	cfg := sc.Seq2Seq
	cfg.InputDim = len(set.Names)
	cfg.Seed = sc.Seed
	model, err := nn.NewLSTMRegressor(cfg)
	if err != nil {
		res.Err = err
		return res
	}
	yTrain := make([]float64, len(train.Y))
	for i := range train.Y {
		yTrain[i] = train.Y[i][0]
	}
	if err := model.Fit(train.X, yTrain); err != nil {
		res.Err = err
		return res
	}
	pred := make([]float64, len(test.X))
	truth := make([]float64, len(test.X))
	for i := range test.X {
		v, err := model.Predict(test.X[i])
		if err != nil {
			res.Err = err
			return res
		}
		pred[i] = v
		truth[i] = test.Y[i][0]
	}
	scoreAll(&res, pred, truth)
	return res
}

// GlobalDataset builds the paper's Global dataset: all areas with known
// 5G panel locations (Intersection + Airport).
func GlobalDataset(byArea map[string]*dataset.Dataset) *dataset.Dataset {
	out := &dataset.Dataset{}
	for _, name := range []string{"Intersection", "Airport"} {
		if d, ok := byArea[name]; ok {
			out.Records = append(out.Records, d.Records...)
		}
	}
	return out
}

// FeatureImportance trains a GDBT on the group and returns logical
// feature importances: sin/cos pairs are merged back into one entry per
// underlying feature, matching Fig 22's presentation.
func FeatureImportance(d *dataset.Dataset, g features.Group, sc Scale) (names []string, importance []float64, err error) {
	sc = sc.withDefaults()
	m := features.Build(d, g)
	if len(m.X) == 0 {
		return nil, nil, fmt.Errorf("core: no usable rows for %s", g)
	}
	cfg := sc.GBDT
	cfg.Seed = sc.Seed
	model := gbdt.New(cfg)
	if err := model.Fit(m.X, m.Y); err != nil {
		return nil, nil, err
	}
	raw, err := model.FeatureImportance()
	if err != nil {
		return nil, nil, err
	}
	// Merge *_sin / *_cos columns.
	order := []string{}
	agg := map[string]float64{}
	for j, n := range m.Names {
		logical := n
		if cut, ok := trimSuffix(n, "_sin"); ok {
			logical = cut
		} else if cut, ok := trimSuffix(n, "_cos"); ok {
			logical = cut
		}
		if _, seen := agg[logical]; !seen {
			order = append(order, logical)
		}
		agg[logical] += raw[j]
	}
	importance = make([]float64, len(order))
	for i, n := range order {
		importance[i] = agg[n]
	}
	// Guard against drift: importances still sum to ~1.
	var sum float64
	for _, v := range importance {
		sum += v
	}
	if sum > 0 && math.Abs(sum-1) > 1e-6 {
		for i := range importance {
			importance[i] /= sum
		}
	}
	return order, importance, nil
}

func trimSuffix(s, suffix string) (string, bool) {
	if len(s) > len(suffix) && s[len(s)-len(suffix):] == suffix {
		return s[:len(s)-len(suffix)], true
	}
	return s, false
}
