package core

import (
	"fmt"

	"lumos5g/internal/dataset"
	"lumos5g/internal/features"
	"lumos5g/internal/ml"
	"lumos5g/internal/ml/gbdt"
	"lumos5g/internal/stats"
)

// TransferResult holds the §6.2 transferability analysis: a T+M model
// trained on one panel's data and tested on another's. The paper trains
// on the Airport North panel, tests on the South panel, and reports
// w-avgF1 0.71 overall rising to 0.91 within 25 m.
type TransferResult struct {
	TrainPanelID int
	TestPanelID  int
	// OverallF1 is the weighted-average F1 on all test-panel samples.
	OverallF1 float64
	// NearF1 is the F1 restricted to UE-panel distance < NearMeters.
	NearF1     float64
	NearMeters float64
	NTest      int
	NNear      int
}

// Transferability trains a GDBT T+M model on records served by
// trainPanelID and evaluates it on records served by testPanelID,
// overall and within nearMeters.
func Transferability(d *dataset.Dataset, trainPanelID, testPanelID int, nearMeters float64, sc Scale) (*TransferResult, error) {
	sc = sc.withDefaults()
	trainSet := d.Filter(func(r *dataset.Record) bool { return r.CellID == trainPanelID })
	testSet := d.Filter(func(r *dataset.Record) bool { return r.CellID == testPanelID })
	if trainSet.Len() == 0 || testSet.Len() == 0 {
		return nil, fmt.Errorf("core: transferability needs data on both panels (train %d, test %d rows)",
			trainSet.Len(), testSet.Len())
	}
	trainM := features.Build(trainSet, features.GroupTM)
	testM := features.Build(testSet, features.GroupTM)
	if len(trainM.X) == 0 || len(testM.X) == 0 {
		return nil, fmt.Errorf("core: transferability needs T features on both panels")
	}
	cfg := sc.GBDT
	cfg.Seed = sc.Seed
	model := gbdt.New(cfg)
	if err := model.Fit(trainM.X, trainM.Y); err != nil {
		return nil, err
	}

	pred := ml.PredictAll(model, testM.X)
	cmAll := stats.NewConfusionMatrix(ml.NumClasses, ml.ClassesOf(pred), ml.ClassesOf(testM.Y))

	// Near-subset: T+M's first feature after speed is panel_dist; find it
	// by name to stay robust to group layout changes.
	distCol := -1
	for j, n := range testM.Names {
		if n == "panel_dist" {
			distCol = j
			break
		}
	}
	if distCol < 0 {
		return nil, fmt.Errorf("core: panel_dist feature missing from T+M")
	}
	var nearPred, nearTruth []float64
	for i, row := range testM.X {
		if row[distCol] < nearMeters {
			nearPred = append(nearPred, pred[i])
			nearTruth = append(nearTruth, testM.Y[i])
		}
	}
	res := &TransferResult{
		TrainPanelID: trainPanelID,
		TestPanelID:  testPanelID,
		OverallF1:    cmAll.WeightedF1(),
		NearMeters:   nearMeters,
		NTest:        len(testM.Y),
		NNear:        len(nearTruth),
	}
	if len(nearTruth) > 0 {
		cmNear := stats.NewConfusionMatrix(ml.NumClasses, ml.ClassesOf(nearPred), ml.ClassesOf(nearTruth))
		res.NearF1 = cmNear.WeightedF1()
	}
	return res, nil
}
