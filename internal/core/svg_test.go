package core

import (
	"strings"
	"testing"
)

func TestRenderSVG(t *testing.T) {
	d := airportData(t)
	tm := BuildThroughputMap(d, 3)
	svg := tm.RenderSVG(6)
	if !strings.HasPrefix(svg, `<svg xmlns="http://www.w3.org/2000/svg"`) {
		t.Fatal("not an SVG document")
	}
	if !strings.HasSuffix(svg, "</svg>") {
		t.Fatal("unterminated SVG")
	}
	// One rect per cell plus background and legend swatches.
	rects := strings.Count(svg, "<rect")
	if rects < len(tm.Cells)+1 {
		t.Fatalf("%d rects for %d cells", rects, len(tm.Cells))
	}
	if strings.Count(svg, "<title>") != len(tm.Cells) {
		t.Fatalf("%d tooltips for %d cells", strings.Count(svg, "<title>"), len(tm.Cells))
	}
	// Legend present.
	if !strings.Contains(svg, ">=1000") {
		t.Fatal("legend missing")
	}
}

func TestRenderSVGEmpty(t *testing.T) {
	tm := &ThroughputMap{}
	svg := tm.RenderSVG(0)
	if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(svg, "</svg>") {
		t.Fatalf("empty-map SVG malformed: %s", svg)
	}
}

func TestSVGColorScale(t *testing.T) {
	if svgColor(10) != "#8b0000" {
		t.Fatal("dead zones should be dark red")
	}
	if svgColor(2000) != "#32cd32" {
		t.Fatal("ultra-high should be lime green")
	}
	// Monotone scale: colors change as throughput crosses boundaries.
	prev := svgColor(0)
	changes := 0
	for _, v := range []float64{100, 200, 400, 600, 800, 1200} {
		c := svgColor(v)
		if c != prev {
			changes++
		}
		prev = c
	}
	if changes < 5 {
		t.Fatalf("color scale too coarse: %d changes", changes)
	}
}
