package core

import (
	"fmt"
	"math"
	"strings"
)

// Throughput color scale mirroring the paper's heatmaps (Fig 6): dark red
// below 60 Mbps through orange and yellow to lime green above 1 Gbps.
var svgScale = []struct {
	maxMbps float64
	color   string
}{
	{60, "#8b0000"},          // dark red: dead
	{150, "#c62828"},         // red
	{300, "#ef6c00"},         // orange
	{500, "#f9a825"},         // amber
	{700, "#d4c422"},         // yellow
	{1000, "#9ccc2e"},        // yellow-green
	{math.Inf(1), "#32cd32"}, // lime green: ultra-high
}

func svgColor(mbps float64) string {
	for _, s := range svgScale {
		if mbps < s.maxMbps {
			return s.color
		}
	}
	return svgScale[len(svgScale)-1].color
}

// RenderSVG draws the throughput map as an SVG document, one square per
// 2 m grid cell (cellPx pixels on screen), with a legend — a standalone
// artifact a web frontend could serve as the paper's envisioned
// "5G throughput map" (Fig 3c).
func (tm *ThroughputMap) RenderSVG(cellPx int) string {
	if cellPx <= 0 {
		cellPx = 6
	}
	if len(tm.Cells) == 0 {
		return `<svg xmlns="http://www.w3.org/2000/svg" width="10" height="10"></svg>`
	}
	minC, maxC := math.MaxInt32, math.MinInt32
	minR, maxR := math.MaxInt32, math.MinInt32
	for k := range tm.Cells {
		if k.Col < minC {
			minC = k.Col
		}
		if k.Col > maxC {
			maxC = k.Col
		}
		if k.Row < minR {
			minR = k.Row
		}
		if k.Row > maxR {
			maxR = k.Row
		}
	}
	const legendH = 40
	w := (maxC - minC + 1) * cellPx
	h := (maxR-minR+1)*cellPx + legendH

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`,
		w, h, w, h)
	b.WriteString(`<rect width="100%" height="100%" fill="#1b1b1b"/>`)
	for _, cell := range tm.SortedCells() {
		x := (cell.Key.Col - minC) * cellPx
		y := (cell.Key.Row - minR) * cellPx
		fmt.Fprintf(&b,
			`<rect x="%d" y="%d" width="%d" height="%d" fill="%s"><title>%.0f Mbps (median %.0f, CV %.0f%%, n=%d)</title></rect>`,
			x, y, cellPx, cellPx, svgColor(cell.MeanMbps),
			cell.MeanMbps, cell.MedianMbps, 100*cell.CV, cell.N)
	}
	// Legend swatches.
	labels := []string{"<60", "<150", "<300", "<500", "<700", "<1000", ">=1000"}
	ly := h - legendH + 8
	for i, s := range svgScale {
		lx := 4 + i*(w-8)/len(svgScale)
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="10" height="10" fill="%s"/>`, lx, ly, s.color)
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="9" fill="#eeeeee">%s</text>`, lx+12, ly+9, labels[i])
	}
	fmt.Fprintf(&b, `<text x="4" y="%d" font-size="9" fill="#bbbbbb">mean throughput per 2 m cell (Mbps)</text>`, h-6)
	b.WriteString(`</svg>`)
	return b.String()
}
