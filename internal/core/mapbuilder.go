package core

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"lumos5g/internal/dataset"
	"lumos5g/internal/geo"
	"lumos5g/internal/stats"
)

// MapCell is one aggregated grid cell of a 5G throughput map.
type MapCell struct {
	Key        geo.GridKey
	MeanMbps   float64
	MedianMbps float64
	CV         float64
	N          int
	NRFraction float64
}

// ThroughputMap is the paper's envisioned artifact (Fig 3c): per-grid
// throughput statistics over an area, built from crowdsourced samples.
type ThroughputMap struct {
	Cells map[geo.GridKey]*MapCell
	// MinSamples was the inclusion threshold used.
	MinSamples int
}

// BuildThroughputMap aggregates d into 2 m × 2 m grid cells (Fig 6).
// Cells with fewer than minSamples samples are omitted.
func BuildThroughputMap(d *dataset.Dataset, minSamples int) *ThroughputMap {
	if minSamples < 1 {
		minSamples = 1
	}
	tm := &ThroughputMap{Cells: map[geo.GridKey]*MapCell{}, MinSamples: minSamples}
	groups := d.GroupByGrid()
	for key, idxs := range groups {
		if len(idxs) < minSamples {
			continue
		}
		vals := make([]float64, len(idxs))
		nr := 0
		for j, i := range idxs {
			vals[j] = d.Records[i].ThroughputMbps
			if d.Records[i].CellID >= 0 {
				nr++
			}
		}
		s := stats.Summarize(vals)
		tm.Cells[key] = &MapCell{
			Key:        key,
			MeanMbps:   s.Mean,
			MedianMbps: s.Median,
			CV:         s.CV,
			N:          s.N,
			NRFraction: float64(nr) / float64(len(idxs)),
		}
	}
	return tm
}

// Lookup returns the cell containing the given pixel coordinates, or nil.
func (tm *ThroughputMap) Lookup(pixelX, pixelY int) *MapCell {
	return tm.Cells[geo.GridKey{Col: pixelX / 2, Row: pixelY / 2}]
}

// CVExceedingFraction returns the fraction of cells whose CV exceeds the
// threshold — the §4.1 statistic ("~53% of geolocations have CV ≥ 50%").
func (tm *ThroughputMap) CVExceedingFraction(threshold float64) float64 {
	if len(tm.Cells) == 0 {
		return math.NaN()
	}
	n := 0
	for _, c := range tm.Cells {
		if !math.IsNaN(c.CV) && c.CV >= threshold {
			n++
		}
	}
	return float64(n) / float64(len(tm.Cells))
}

// throughputGlyph maps a mean throughput to a heat glyph (the ASCII
// rendition of Fig 6's color scale: dark red <60 Mbps ... lime >1 Gbps).
func throughputGlyph(mbps float64) byte {
	switch {
	case mbps < 60:
		return '.'
	case mbps < 300:
		return ':'
	case mbps < 700:
		return 'o'
	case mbps < 1000:
		return 'O'
	default:
		return '#'
	}
}

// Render draws the map as ASCII art, one glyph per 2 m cell, rows north
// to south. Legend: '.' <60 Mbps, ':' <300, 'o' <700, 'O' <1000, '#' ≥1 Gbps.
func (tm *ThroughputMap) Render() string {
	if len(tm.Cells) == 0 {
		return "(empty map)\n"
	}
	minC, maxC := math.MaxInt32, math.MinInt32
	minR, maxR := math.MaxInt32, math.MinInt32
	for k := range tm.Cells {
		if k.Col < minC {
			minC = k.Col
		}
		if k.Col > maxC {
			maxC = k.Col
		}
		if k.Row < minR {
			minR = k.Row
		}
		if k.Row > maxR {
			maxR = k.Row
		}
	}
	var b strings.Builder
	for r := minR; r <= maxR; r++ {
		line := make([]byte, maxC-minC+1)
		for c := range line {
			line[c] = ' '
		}
		for c := minC; c <= maxC; c++ {
			if cell, ok := tm.Cells[geo.GridKey{Col: c, Row: r}]; ok {
				line[c-minC] = throughputGlyph(cell.MeanMbps)
			}
		}
		b.Write(line)
		b.WriteByte('\n')
	}
	return b.String()
}

// SortedCells returns cells ordered by (row, col) for deterministic
// iteration (CSV export, tests).
func (tm *ThroughputMap) SortedCells() []*MapCell {
	out := make([]*MapCell, 0, len(tm.Cells))
	for _, c := range tm.Cells {
		out = append(out, c)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Key.Row != out[b].Key.Row {
			return out[a].Key.Row < out[b].Key.Row
		}
		return out[a].Key.Col < out[b].Key.Col
	})
	return out
}

// CoverageFraction returns the fraction of cells whose NR attachment rate
// exceeds half — the "5G coverage map" of Fig 3b, which the paper shows
// is insufficient to infer throughput.
func (tm *ThroughputMap) CoverageFraction() float64 {
	if len(tm.Cells) == 0 {
		return math.NaN()
	}
	n := 0
	for _, c := range tm.Cells {
		if c.NRFraction > 0.5 {
			n++
		}
	}
	return float64(n) / float64(len(tm.Cells))
}

// String summarises the map.
func (tm *ThroughputMap) String() string {
	return fmt.Sprintf("throughput map: %d cells (min %d samples/cell)", len(tm.Cells), tm.MinSamples)
}
