package core

import (
	"math"
	"testing"

	"lumos5g/internal/dataset"
	"lumos5g/internal/env"
	"lumos5g/internal/features"
	"lumos5g/internal/ml/gbdt"
	"lumos5g/internal/ml/nn"
	"lumos5g/internal/sim"
)

// testScale keeps unit tests fast while preserving model behaviour.
func testScale() Scale {
	return Scale{
		GBDT:        gbdt.Config{Estimators: 40, MaxDepth: 5},
		Seq2Seq:     nn.Seq2SeqConfig{Hidden: 16, Layers: 1, Epochs: 25, Batch: 32, LR: 0.01},
		SeqLen:      10,
		SeqTrainCap: 1500,
		Seed:        1,
	}
}

var cachedAirport *dataset.Dataset

func airportData(t *testing.T) *dataset.Dataset {
	t.Helper()
	if cachedAirport == nil {
		cfg := sim.Config{Seed: 1, WalkPasses: 4, StationarySessions: 2, BackgroundUEProb: 0.1}
		d := sim.RunArea(env.Airport(), cfg)
		cachedAirport, _ = d.QualityFilter()
	}
	return cachedAirport
}

func TestEvaluateGDBTBeatsLocationOnly(t *testing.T) {
	d := airportData(t)
	sc := testScale()
	l := Evaluate(d, features.GroupL, ModelGDBT, sc)
	if l.Err != nil {
		t.Fatal(l.Err)
	}
	lmc := Evaluate(d, features.GroupLMC, ModelGDBT, sc)
	if lmc.Err != nil {
		t.Fatal(lmc.Err)
	}
	if lmc.MAE >= l.MAE {
		t.Fatalf("L+M+C (MAE %v) should beat L alone (MAE %v) — the paper's core finding", lmc.MAE, l.MAE)
	}
	if lmc.WeightedF1 <= l.WeightedF1 {
		t.Fatalf("L+M+C F1 %v should beat L F1 %v", lmc.WeightedF1, l.WeightedF1)
	}
}

func TestEvaluateGDBTBeatsKNNBaseline(t *testing.T) {
	d := airportData(t)
	sc := testScale()
	g := Evaluate(d, features.GroupLM, ModelGDBT, sc)
	k := Evaluate(d, features.GroupLM, ModelKNN, sc)
	if g.Err != nil || k.Err != nil {
		t.Fatal(g.Err, k.Err)
	}
	if g.MAE >= k.MAE {
		t.Fatalf("GDBT MAE %v should beat KNN MAE %v (Table 9)", g.MAE, k.MAE)
	}
}

func TestEvaluateOKOnlyOnL(t *testing.T) {
	d := airportData(t)
	sc := testScale()
	ok := Evaluate(d, features.GroupL, ModelOK, sc)
	if ok.Err != nil {
		t.Fatalf("OK on L should work: %v", ok.Err)
	}
	na := Evaluate(d, features.GroupLM, ModelOK, sc)
	if na.Err == nil {
		t.Fatal("OK on L+M must be NA, as in Table 9")
	}
}

func TestEvaluateHM(t *testing.T) {
	d := airportData(t)
	res := Evaluate(d, features.GroupC, ModelHM, testScale())
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.NTest == 0 || math.IsNaN(res.MAE) {
		t.Fatalf("HM result: %+v", res)
	}
	// HM must be worse than GDBT L+M+C (the paper's Table 9 finding).
	g := Evaluate(d, features.GroupLMC, ModelGDBT, testScale())
	if res.MAE <= g.MAE {
		t.Fatalf("HM MAE %v should exceed GDBT L+M+C MAE %v", res.MAE, g.MAE)
	}
}

func TestEvaluateSeq2SeqRuns(t *testing.T) {
	d := airportData(t)
	res := Evaluate(d, features.GroupLM, ModelSeq2Seq, testScale())
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.NTest == 0 || math.IsNaN(res.MAE) || res.MAE <= 0 {
		t.Fatalf("Seq2Seq result: %+v", res)
	}
	// Even a tiny Seq2Seq should beat the location-only KNN baseline.
	k := Evaluate(d, features.GroupL, ModelKNN, testScale())
	if res.MAE >= k.MAE {
		t.Fatalf("Seq2Seq L+M MAE %v should beat KNN L MAE %v", res.MAE, k.MAE)
	}
}

func TestEvaluateTMSkipsUnsurveyedArea(t *testing.T) {
	cfg := sim.Config{Seed: 3, WalkPasses: 1, BackgroundUEProb: 0}
	loop := sim.RunArea(env.Loop(), cfg)
	res := Evaluate(loop, features.GroupTM, ModelGDBT, testScale())
	if res.Err == nil {
		t.Fatal("T+M on the Loop must be NA (panels unsurveyed) — the '-' cells of Tables 7–8")
	}
}

func TestResultString(t *testing.T) {
	d := airportData(t)
	res := Evaluate(d, features.GroupL, ModelKNN, testScale())
	if len(res.String()) == 0 {
		t.Fatal("empty result string")
	}
	na := Evaluate(d, features.GroupLM, ModelOK, testScale())
	if len(na.String()) == 0 {
		t.Fatal("empty NA string")
	}
}

func TestModelKindString(t *testing.T) {
	kinds := []ModelKind{ModelKNN, ModelRF, ModelOK, ModelHM, ModelGDBT, ModelSeq2Seq}
	want := []string{"KNN", "RF", "OK", "HM", "GDBT", "Seq2Seq"}
	for i, k := range kinds {
		if k.String() != want[i] {
			t.Fatalf("%v != %s", k, want[i])
		}
	}
	if ModelKind(99).String() != "?" {
		t.Fatal("unknown kind")
	}
}

func TestGlobalDataset(t *testing.T) {
	byArea := map[string]*dataset.Dataset{
		"Airport":      {Records: make([]dataset.Record, 3)},
		"Intersection": {Records: make([]dataset.Record, 2)},
		"Loop":         {Records: make([]dataset.Record, 7)},
	}
	g := GlobalDataset(byArea)
	// Global = areas with surveyed panels only (not Loop).
	if g.Len() != 5 {
		t.Fatalf("global len = %d, want 5", g.Len())
	}
}

func TestFeatureImportance(t *testing.T) {
	d := airportData(t)
	names, imp, err := FeatureImportance(d, features.GroupTMC, testScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != len(imp) {
		t.Fatal("name/importance length mismatch")
	}
	// sin/cos merged: theta_p appears once.
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate logical feature %s", n)
		}
		seen[n] = true
	}
	if !seen["theta_p"] || !seen["theta_m"] || !seen["panel_dist"] {
		t.Fatalf("missing logical T features: %v", names)
	}
	var sum float64
	for _, v := range imp {
		if v < 0 {
			t.Fatal("negative importance")
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("importance sum = %v", sum)
	}
	// Fig 22's key observation: no single feature dominates entirely.
	for i, v := range imp {
		if v > 0.9 {
			t.Fatalf("feature %s dominates with %v", names[i], v)
		}
	}
}

func TestTransferability(t *testing.T) {
	d := airportData(t)
	res, err := Transferability(d, env.AirportNorthPanelID, env.AirportSouthPanelID, 25, testScale())
	if err != nil {
		t.Fatal(err)
	}
	if res.NTest == 0 {
		t.Fatal("no test samples")
	}
	if res.OverallF1 <= 0.3 {
		t.Fatalf("transfer F1 = %v, should be decent (paper: 0.71)", res.OverallF1)
	}
	if res.NNear > 0 && res.NearF1 < res.OverallF1-0.25 {
		t.Fatalf("near-panel F1 (%v) should not collapse vs overall (%v)", res.NearF1, res.OverallF1)
	}
}

func TestTransferabilityErrors(t *testing.T) {
	d := airportData(t)
	if _, err := Transferability(d, 9999, env.AirportSouthPanelID, 25, testScale()); err == nil {
		t.Fatal("unknown train panel should error")
	}
}

func TestBuildThroughputMap(t *testing.T) {
	d := airportData(t)
	tm := BuildThroughputMap(d, 3)
	if len(tm.Cells) == 0 {
		t.Fatal("empty map")
	}
	for _, c := range tm.Cells {
		if c.N < 3 {
			t.Fatal("minSamples violated")
		}
		if c.MeanMbps < 0 {
			t.Fatal("negative mean")
		}
		if c.NRFraction < 0 || c.NRFraction > 1 {
			t.Fatal("NR fraction out of range")
		}
	}
	// Lookup consistency.
	first := tm.SortedCells()[0]
	if got := tm.Lookup(first.Key.Col*2, first.Key.Row*2); got != first {
		t.Fatal("Lookup should find the cell by pixel")
	}
	// CV fraction: the paper reports ~53% of grids with CV >= 50% —
	// ours should at least show substantial variability.
	frac := tm.CVExceedingFraction(0.5)
	if math.IsNaN(frac) || frac <= 0.05 {
		t.Fatalf("CV>=50%% fraction = %v, want substantial variability (§4.1)", frac)
	}
	if cov := tm.CoverageFraction(); math.IsNaN(cov) || cov <= 0 {
		t.Fatalf("coverage fraction = %v", cov)
	}
}

func TestRenderMap(t *testing.T) {
	d := airportData(t)
	tm := BuildThroughputMap(d, 2)
	out := tm.Render()
	if len(out) == 0 {
		t.Fatal("empty render")
	}
	if (&ThroughputMap{Cells: nil}).Render() != "(empty map)\n" {
		t.Fatal("empty map render")
	}
}
