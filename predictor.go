package lumos5g

import (
	"errors"
	"fmt"

	"lumos5g/internal/core"
	"lumos5g/internal/features"
	"lumos5g/internal/ml"
	"lumos5g/internal/ml/forest"
	"lumos5g/internal/ml/gbdt"
	"lumos5g/internal/ml/knn"
	"lumos5g/internal/ml/kriging"
	"lumos5g/internal/ml/nn"
)

// Predictor is a trained throughput model bound to a feature group — the
// artifact an application would download alongside a throughput map
// (§2.3) and query for bandwidth decisions.
type Predictor struct {
	group FeatureGroup
	model Model
	reg   ml.Regressor
	names []string
}

// ErrNoUsableRows is returned (wrapped) by Train when the dataset yields
// no rows under the requested feature group — e.g. a tower group on an
// area whose panels were never surveyed.
var ErrNoUsableRows = errors.New("no usable rows")

// Train fits a model (KNN, RF, OK, GDBT, LSTM or Seq2Seq) on the whole
// dataset under the feature group and returns a reusable Predictor. The
// recurrent models train on length-1 sequences of the same tabular
// features and serve through the compiled inference kernel
// (internal/ml/compiled), so the paper's most accurate model class
// answers point queries like any ensemble. For train/test *evaluation*,
// use Evaluate instead — Train deliberately uses every sample, as a
// production model would.
func Train(d *Dataset, g FeatureGroup, m Model, sc Scale) (*Predictor, error) {
	mat := features.Build(d, g)
	if len(mat.X) == 0 {
		return nil, fmt.Errorf("lumos5g: %w for %s", ErrNoUsableRows, g)
	}
	var reg ml.Regressor
	switch m {
	case core.ModelKNN:
		reg = knn.New(sc.KNN)
	case core.ModelRF:
		cfg := sc.RF
		cfg.Seed = sc.Seed
		reg = forest.New(cfg)
	case core.ModelOK:
		reg = kriging.New(sc.Kriging)
	case core.ModelGDBT:
		cfg := sc.GBDT
		cfg.Seed = sc.Seed
		reg = gbdt.New(cfg)
	case core.ModelLSTM:
		cfg := sc.Seq2Seq
		cfg.Seed = sc.Seed
		reg = nn.NewTabularLSTM(cfg)
	case core.ModelSeq2Seq:
		cfg := sc.Seq2Seq
		cfg.Seed = sc.Seed
		reg = nn.NewTabularSeq2Seq(cfg)
	default:
		return nil, fmt.Errorf("lumos5g: Train supports KNN, RF, OK, GDBT, LSTM and Seq2Seq, not %s", m)
	}
	if err := reg.Fit(mat.X, mat.Y); err != nil {
		return nil, err
	}
	return &Predictor{group: g, model: m, reg: reg, names: mat.Names}, nil
}

// Group returns the predictor's feature group.
func (p *Predictor) Group() FeatureGroup { return p.group }

// Model returns the predictor's model family.
func (p *Predictor) Model() Model { return p.model }

// FeatureNames returns the expected feature column order for Predict.
func (p *Predictor) FeatureNames() []string {
	return append([]string(nil), p.names...)
}

// Predict estimates throughput for one raw feature vector (in the order
// of FeatureNames).
func (p *Predictor) Predict(x []float64) float64 { return p.reg.Predict(x) }

// PredictClass maps Predict's output to a throughput class.
func (p *Predictor) PredictClass(x []float64) Class { return ml.ClassOf(p.reg.Predict(x)) }

// PredictBatch estimates throughput for many raw feature vectors at
// once, taking the model's vectorised fast path when it has one. Each
// element equals Predict of that row exactly.
func (p *Predictor) PredictBatch(X [][]float64) []float64 {
	return ml.PredictAll(p.reg, X)
}

// PredictDataset vectorises d under the predictor's feature group and
// returns the per-row predictions along with the record indices they
// correspond to.
func (p *Predictor) PredictDataset(d *Dataset) (pred []float64, recordIdx []int) {
	mat := features.Build(d, p.group)
	return ml.PredictAll(p.reg, mat.X), mat.RecordIdx
}
