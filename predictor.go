package lumos5g

import (
	"errors"
	"fmt"

	"lumos5g/internal/core"
	"lumos5g/internal/features"
	"lumos5g/internal/ml"
	"lumos5g/internal/ml/forest"
	"lumos5g/internal/ml/gbdt"
	"lumos5g/internal/ml/knn"
	"lumos5g/internal/ml/kriging"
	"lumos5g/internal/ml/nn"
)

// Predictor is a trained throughput model bound to a feature group — the
// artifact an application would download alongside a throughput map
// (§2.3) and query for bandwidth decisions.
type Predictor struct {
	group FeatureGroup
	model Model
	reg   ml.Regressor
	names []string
	// ival holds split-conformal residual offsets when the predictor was
	// calibrated (TrainCalibrated, or Calibrate on held-out rows); nil
	// means PredictInterval serves degenerate zero-width bands.
	ival *ml.ConformalOffsets
}

// ErrNoUsableRows is returned (wrapped) by Train when the dataset yields
// no rows under the requested feature group — e.g. a tower group on an
// area whose panels were never surveyed.
var ErrNoUsableRows = errors.New("no usable rows")

// Train fits a model (KNN, RF, OK, GDBT, LSTM or Seq2Seq) on the whole
// dataset under the feature group and returns a reusable Predictor. The
// recurrent models train on length-1 sequences of the same tabular
// features and serve through the compiled inference kernel
// (internal/ml/compiled), so the paper's most accurate model class
// answers point queries like any ensemble. For train/test *evaluation*,
// use Evaluate instead — Train deliberately uses every sample, as a
// production model would.
func Train(d *Dataset, g FeatureGroup, m Model, sc Scale) (*Predictor, error) {
	mat := features.Build(d, g)
	if len(mat.X) == 0 {
		return nil, fmt.Errorf("lumos5g: %w for %s", ErrNoUsableRows, g)
	}
	reg, err := newRegressor(m, sc)
	if err != nil {
		return nil, err
	}
	if err := reg.Fit(mat.X, mat.Y); err != nil {
		return nil, err
	}
	return &Predictor{group: g, model: m, reg: reg, names: mat.Names}, nil
}

// newRegressor constructs the unfitted model family for a Scale.
func newRegressor(m Model, sc Scale) (ml.Regressor, error) {
	switch m {
	case core.ModelKNN:
		return knn.New(sc.KNN), nil
	case core.ModelRF:
		cfg := sc.RF
		cfg.Seed = sc.Seed
		return forest.New(cfg), nil
	case core.ModelOK:
		return kriging.New(sc.Kriging), nil
	case core.ModelGDBT:
		cfg := sc.GBDT
		cfg.Seed = sc.Seed
		return gbdt.New(cfg), nil
	case core.ModelLSTM:
		cfg := sc.Seq2Seq
		cfg.Seed = sc.Seed
		return nn.NewTabularLSTM(cfg), nil
	case core.ModelSeq2Seq:
		cfg := sc.Seq2Seq
		cfg.Seed = sc.Seed
		return nn.NewTabularSeq2Seq(cfg), nil
	default:
		return nil, fmt.Errorf("lumos5g: Train supports KNN, RF, OK, GDBT, LSTM and Seq2Seq, not %s", m)
	}
}

// TrainCalibrated fits a model on the deterministic train side of the
// evaluation split (core's seeded 70/30 discipline, the same one
// Evaluate and the experiments lab use) and conformally calibrates its
// residual offsets on the held-out side, so PredictInterval serves
// bands with honest finite-sample coverage. The point model sees only
// TrainFrac of the data — that is the price of an uncontaminated
// calibration set. When the holdout is too small to calibrate, the
// predictor falls back to a full-data fit with no offsets (degenerate
// intervals) rather than failing.
func TrainCalibrated(d *Dataset, g FeatureGroup, m Model, sc Scale) (*Predictor, error) {
	mat := features.Build(d, g)
	if len(mat.X) == 0 {
		return nil, fmt.Errorf("lumos5g: %w for %s", ErrNoUsableRows, g)
	}
	frac := sc.TrainFrac
	if frac <= 0 || frac >= 1 {
		frac = 0.7
	}
	trainX, trainY, calX, calY := core.SplitMatrixForTest(mat, frac, sc.Seed)
	if len(trainY) < 2 || len(calY) < ml.MinCalibration {
		return Train(d, g, m, sc)
	}
	reg, err := newRegressor(m, sc)
	if err != nil {
		return nil, err
	}
	if err := reg.Fit(trainX, trainY); err != nil {
		return nil, err
	}
	p := &Predictor{group: g, model: m, reg: reg, names: mat.Names}
	off, err := ml.CalibrateConformal(ml.PredictAll(reg, calX), calY)
	if err != nil {
		return nil, fmt.Errorf("lumos5g: calibrate %s: %w", g, err)
	}
	p.ival = &off
	return p, nil
}

// Calibrate computes split-conformal offsets from held-out rows the
// model was not trained on and attaches them to the predictor. X rows
// follow FeatureNames order.
func (p *Predictor) Calibrate(X [][]float64, ys []float64) error {
	off, err := ml.CalibrateConformal(ml.PredictAll(p.reg, X), ys)
	if err != nil {
		return err
	}
	p.ival = &off
	return nil
}

// SetConformalOffsets attaches pre-computed calibration offsets (the
// artifact-load path). Non-finite offsets are rejected.
func (p *Predictor) SetConformalOffsets(o ml.ConformalOffsets) error {
	if !o.Valid() {
		return fmt.Errorf("lumos5g: non-finite conformal offsets %+v", o)
	}
	p.ival = &o
	return nil
}

// ConformalOffsets returns the calibration offsets and whether the
// predictor has been calibrated.
func (p *Predictor) ConformalOffsets() (ml.ConformalOffsets, bool) {
	if p.ival == nil {
		return ml.ConformalOffsets{}, false
	}
	return *p.ival, true
}

// HasInterval reports whether PredictInterval serves calibrated (rather
// than degenerate) bands.
func (p *Predictor) HasInterval() bool { return p.ival != nil }

// PredictInterval returns the p10/p50/p90 band for one feature vector:
// the point prediction plus conformal residual offsets, with
// p10 <= p50 <= p90 enforced. Uncalibrated predictors return the
// zero-width band at the point prediction.
func (p *Predictor) PredictInterval(x []float64) ml.Interval {
	mid := p.reg.Predict(x)
	if p.ival == nil {
		return ml.Degenerate(mid)
	}
	return p.ival.Interval(mid)
}

// PredictIntervalBatch returns the p10/p50/p90 band for every row of X.
// Element i equals PredictInterval(X[i]) exactly.
func (p *Predictor) PredictIntervalBatch(X [][]float64) []ml.Interval {
	mids := ml.PredictAll(p.reg, X)
	out := make([]ml.Interval, len(mids))
	for i, mid := range mids {
		if p.ival == nil {
			out[i] = ml.Degenerate(mid)
		} else {
			out[i] = p.ival.Interval(mid)
		}
	}
	return out
}

// Group returns the predictor's feature group.
func (p *Predictor) Group() FeatureGroup { return p.group }

// Model returns the predictor's model family.
func (p *Predictor) Model() Model { return p.model }

// FeatureNames returns the expected feature column order for Predict.
func (p *Predictor) FeatureNames() []string {
	return append([]string(nil), p.names...)
}

// Predict estimates throughput for one raw feature vector (in the order
// of FeatureNames).
func (p *Predictor) Predict(x []float64) float64 { return p.reg.Predict(x) }

// PredictClass maps Predict's output to a throughput class.
func (p *Predictor) PredictClass(x []float64) Class { return ml.ClassOf(p.reg.Predict(x)) }

// PredictBatch estimates throughput for many raw feature vectors at
// once, taking the model's vectorised fast path when it has one. Each
// element equals Predict of that row exactly.
func (p *Predictor) PredictBatch(X [][]float64) []float64 {
	return ml.PredictAll(p.reg, X)
}

// PredictDataset vectorises d under the predictor's feature group and
// returns the per-row predictions along with the record indices they
// correspond to.
func (p *Predictor) PredictDataset(d *Dataset) (pred []float64, recordIdx []int) {
	mat := features.Build(d, p.group)
	return ml.PredictAll(p.reg, mat.X), mat.RecordIdx
}
