package lumos5g

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lumos5g/internal/ml/gbdt"
)

// savedChainBytes trains a chain and returns its serialised bundle.
func savedChainBytes(t *testing.T) (*FallbackChain, []byte) {
	t.Helper()
	c, _ := trainTestChain(t)
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return c, buf.Bytes()
}

func savedPredictorBytes(t *testing.T) (*Predictor, []byte) {
	t.Helper()
	a, _ := AreaByName("Airport")
	d, _ := CleanDataset(GenerateArea(a, tinyCampaign()))
	p, err := Train(d, GroupLM, ModelGDBT, testScale())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return p, buf.Bytes()
}

func TestChainSaveLoadRoundTrip(t *testing.T) {
	c, raw := savedChainBytes(t)
	back, err := LoadChain(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if back.Prior() != c.Prior() {
		t.Fatalf("prior %v != %v", back.Prior(), c.Prior())
	}
	if got, want := back.String(), c.String(); got != want {
		t.Fatalf("chain shape %q != %q", got, want)
	}
	queries := []map[string]float64{nil, {"pixel_x": 1, "pixel_y": 1}}
	for _, q := range queries {
		if a, b := c.Predict(q), back.Predict(q); a.Mbps != b.Mbps || a.Tier != b.Tier {
			t.Fatalf("loaded chain diverges: %+v vs %+v", a, b)
		}
	}
}

func TestLoadPredictorTruncated(t *testing.T) {
	_, raw := savedPredictorBytes(t)
	for _, n := range []int{0, 3, envelopeHeadLen - 1, envelopeHeadLen, len(raw) / 2, len(raw) - 1} {
		_, err := LoadPredictor(bytes.NewReader(raw[:n]))
		if !errors.Is(err, ErrArtifactTruncated) {
			t.Fatalf("cut at %d: err = %v, want ErrArtifactTruncated", n, err)
		}
	}
	_, raw = savedChainBytes(t)
	for _, n := range []int{0, 7, len(raw) / 3, len(raw) - 1} {
		_, err := LoadChain(bytes.NewReader(raw[:n]))
		if !errors.Is(err, ErrArtifactTruncated) {
			t.Fatalf("chain cut at %d: err = %v, want ErrArtifactTruncated", n, err)
		}
	}
}

func TestLoadPredictorCorrupt(t *testing.T) {
	_, raw := savedPredictorBytes(t)
	// Flip one payload byte: the CRC must catch it.
	bad := append([]byte(nil), raw...)
	bad[envelopeHeadLen+10] ^= 0xFF
	if _, err := LoadPredictor(bytes.NewReader(bad)); !errors.Is(err, ErrArtifactCorrupt) {
		t.Fatalf("bit flip: err = %v, want ErrArtifactCorrupt", err)
	}
	// A wildly wrong length field must not OOM and must fail typed.
	bad = append([]byte(nil), raw...)
	binary.BigEndian.PutUint32(bad[8:12], 1<<31)
	if _, err := LoadPredictor(bytes.NewReader(bad)); !errors.Is(err, ErrArtifactCorrupt) {
		t.Fatalf("huge length: err = %v, want ErrArtifactCorrupt", err)
	}
	// Garbage takes the legacy-gob path and must fail with a typed
	// artifact error (corrupt, or truncated when the gob stream just
	// runs out), never a panic.
	if _, err := LoadPredictor(strings.NewReader("garbage-not-a-model")); !errors.Is(err, ErrArtifactCorrupt) && !errors.Is(err, ErrArtifactTruncated) {
		t.Fatalf("garbage: err = %v, want a typed artifact error", err)
	}
	if _, err := LoadChain(strings.NewReader("garbage-not-a-chain!!")); !errors.Is(err, ErrArtifactCorrupt) {
		t.Fatalf("chain garbage: err = %v, want ErrArtifactCorrupt", err)
	}
}

func TestLoadPredictorFutureVersion(t *testing.T) {
	_, raw := savedPredictorBytes(t)
	bad := append([]byte(nil), raw...)
	binary.BigEndian.PutUint16(bad[4:6], 999)
	if _, err := LoadPredictor(bytes.NewReader(bad)); !errors.Is(err, ErrArtifactVersion) {
		t.Fatalf("future envelope: err = %v, want ErrArtifactVersion", err)
	}
	// Unknown flags are a future format too.
	bad = append([]byte(nil), raw...)
	binary.BigEndian.PutUint16(bad[6:8], 0x8000)
	if _, err := LoadPredictor(bytes.NewReader(bad)); !errors.Is(err, ErrArtifactVersion) {
		t.Fatalf("unknown flags: err = %v, want ErrArtifactVersion", err)
	}
}

func TestLoadLegacyBareGobArtifact(t *testing.T) {
	p, _ := savedPredictorBytes(t)
	// Pre-envelope artifacts were a bare gob of predictorDTO.
	var model bytes.Buffer
	if err := p.reg.(*gbdt.Model).Save(&model); err != nil {
		t.Fatal(err)
	}
	var legacy bytes.Buffer
	err := gob.NewEncoder(&legacy).Encode(predictorDTO{
		Version: 1,
		Group:   p.Group().String(),
		Names:   p.FeatureNames(),
		Model:   model.Bytes(),
	})
	if err != nil {
		t.Fatal(err)
	}
	back, err := LoadPredictor(&legacy)
	if err != nil {
		t.Fatalf("legacy artifact must still load: %v", err)
	}
	if back.Group() != p.Group() {
		t.Fatal("legacy metadata lost")
	}
}

func TestSaveFileAtomicAndFileLoaders(t *testing.T) {
	dir := t.TempDir()
	c, _ := trainTestChain(t)
	chainPath := filepath.Join(dir, "chain.l5g")
	if err := c.SaveFile(chainPath); err != nil {
		t.Fatal(err)
	}
	// Overwrite must also succeed (rename over existing).
	if err := c.SaveFile(chainPath); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadChainFile(chainPath); err != nil {
		t.Fatal(err)
	}

	p := c.Tiers()[0]
	predPath := filepath.Join(dir, "model.l5g")
	if err := p.SaveFile(predPath); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadPredictorFile(predPath); err != nil {
		t.Fatal(err)
	}

	// No temp droppings left behind.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 2 {
		var names []string
		for _, e := range ents {
			names = append(names, e.Name())
		}
		t.Fatalf("stray files after atomic saves: %v", names)
	}

	// LoadAnyModelFile serves both artifact kinds as chains.
	if got, err := LoadAnyModelFile(chainPath, 100); err != nil || len(got.Tiers()) != len(c.Tiers()) {
		t.Fatalf("LoadAnyModelFile(chain): %v %v", got, err)
	}
	got, err := LoadAnyModelFile(predPath, 123)
	if err != nil || len(got.Tiers()) != 1 || got.Prior() != 123 {
		t.Fatalf("LoadAnyModelFile(predictor): %+v %v", got, err)
	}
}
