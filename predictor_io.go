package lumos5g

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"

	"lumos5g/internal/features"
	"lumos5g/internal/ml/gbdt"
)

// predictorDTO is the wire form of a trained predictor — the paper's
// §2.3 vision has UEs download throughput maps *with ML models*; this is
// that downloadable artifact.
type predictorDTO struct {
	Version int
	Group   string
	Names   []string
	Model   []byte // gbdt payload
}

const predictorWireVersion = 1

// Save serialises a trained predictor. Only GDBT predictors are
// persistable (the deployable model family: compact, CPU-cheap,
// interpretable — the reasons §5.2 gives for choosing GDBT on-device).
func (p *Predictor) Save(w io.Writer) error {
	g, ok := p.reg.(*gbdt.Model)
	if !ok {
		return fmt.Errorf("lumos5g: only GDBT predictors can be saved, not %s", p.model)
	}
	var buf bytes.Buffer
	if err := g.Save(&buf); err != nil {
		return err
	}
	return gob.NewEncoder(w).Encode(predictorDTO{
		Version: predictorWireVersion,
		Group:   p.group.String(),
		Names:   p.names,
		Model:   buf.Bytes(),
	})
}

// LoadPredictor reconstructs a predictor saved with Save.
func LoadPredictor(r io.Reader) (*Predictor, error) {
	var dto predictorDTO
	if err := gob.NewDecoder(r).Decode(&dto); err != nil {
		return nil, fmt.Errorf("lumos5g: decode predictor: %w", err)
	}
	if dto.Version != predictorWireVersion {
		return nil, fmt.Errorf("lumos5g: unsupported predictor version %d", dto.Version)
	}
	group, err := features.ParseGroup(dto.Group)
	if err != nil {
		return nil, err
	}
	model, err := gbdt.Load(bytes.NewReader(dto.Model))
	if err != nil {
		return nil, err
	}
	if model.NumFeatures() != len(dto.Names) {
		return nil, fmt.Errorf("lumos5g: model expects %d features but %d names stored",
			model.NumFeatures(), len(dto.Names))
	}
	return &Predictor{
		group: group,
		model: ModelGDBT,
		reg:   model,
		names: dto.Names,
	}, nil
}
