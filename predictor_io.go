package lumos5g

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"lumos5g/internal/features"
	"lumos5g/internal/ml"
	"lumos5g/internal/ml/gbdt"
)

// Model artifacts are the paper's §2.3 downloadable payloads: UEs fetch
// throughput maps *with ML models attached*, over flaky mmWave links, and
// a map server swaps refreshed artifacts in under live traffic. Both
// sides therefore need to detect truncation and corruption cheaply and
// refuse future formats cleanly, which is what the envelope below
// provides:
//
//	magic[4] | version u16 | flags u16 | payloadLen u32 | crc32c u32 | payload
//
// (big-endian; crc32c is the Castagnoli checksum of the payload bytes).
// Distinct magics separate single-predictor artifacts from chain
// bundles. Loaders return the typed errors ErrArtifactTruncated,
// ErrArtifactCorrupt and ErrArtifactVersion so callers (the mapserver's
// hot-reloader, the CLI) can report precisely what is wrong and keep a
// previous good model live. Artifacts written before the envelope (bare
// gob) are still loadable: LoadPredictor sniffs the magic and falls back
// to the legacy decoder.

// Typed artifact errors. Loaders wrap these; match with errors.Is.
var (
	// ErrArtifactTruncated marks an artifact cut short mid-download or
	// mid-write.
	ErrArtifactTruncated = errors.New("model artifact truncated")
	// ErrArtifactCorrupt marks an artifact whose bytes fail checksum or
	// structural validation.
	ErrArtifactCorrupt = errors.New("model artifact corrupt")
	// ErrArtifactVersion marks an artifact written by a newer format
	// revision than this build understands.
	ErrArtifactVersion = errors.New("model artifact from an unsupported future version")
)

const (
	magicPredictor = "L5GP"
	magicChain     = "L5GC"
	// envelopeVersion is the current envelope revision. Readers accept
	// this and anything older; newer revisions fail with
	// ErrArtifactVersion.
	envelopeVersion = 1
	// maxArtifactBytes bounds payload allocation so a corrupt length
	// field cannot OOM the loader.
	maxArtifactBytes = 64 << 20
	envelopeHeadLen  = 4 + 2 + 2 + 4 + 4
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// writeEnvelope frames payload under the given magic.
func writeEnvelope(w io.Writer, magic string, payload []byte) error {
	var head [envelopeHeadLen]byte
	copy(head[:4], magic)
	binary.BigEndian.PutUint16(head[4:6], envelopeVersion)
	binary.BigEndian.PutUint16(head[6:8], 0) // flags, reserved
	binary.BigEndian.PutUint32(head[8:12], uint32(len(payload)))
	binary.BigEndian.PutUint32(head[12:16], crc32.Checksum(payload, crcTable))
	if _, err := w.Write(head[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readEnvelope reads and verifies one envelope, returning its payload.
func readEnvelope(r io.Reader, magic string) ([]byte, error) {
	var head [envelopeHeadLen]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		return nil, fmt.Errorf("lumos5g: read artifact header: %w", ErrArtifactTruncated)
	}
	if string(head[:4]) != magic {
		return nil, fmt.Errorf("lumos5g: bad artifact magic %q: %w", head[:4], ErrArtifactCorrupt)
	}
	version := binary.BigEndian.Uint16(head[4:6])
	flags := binary.BigEndian.Uint16(head[6:8])
	if version > envelopeVersion || flags != 0 {
		return nil, fmt.Errorf("lumos5g: artifact envelope v%d flags %#x: %w", version, flags, ErrArtifactVersion)
	}
	n := binary.BigEndian.Uint32(head[8:12])
	if n > maxArtifactBytes {
		return nil, fmt.Errorf("lumos5g: artifact claims %d payload bytes: %w", n, ErrArtifactCorrupt)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("lumos5g: read artifact payload: %w", ErrArtifactTruncated)
	}
	if got, want := crc32.Checksum(payload, crcTable), binary.BigEndian.Uint32(head[12:16]); got != want {
		return nil, fmt.Errorf("lumos5g: artifact checksum %08x, want %08x: %w", got, want, ErrArtifactCorrupt)
	}
	return payload, nil
}

// predictorDTO is the wire form of a trained predictor. The conformal
// fields ride along as optional gob fields: artifacts written before
// calibration existed decode with HasIval=false, and old readers skip
// the new fields — no version bump needed.
type predictorDTO struct {
	Version int
	Group   string
	Names   []string
	Model   []byte // gbdt payload
	// Split-conformal interval calibration (PredictInterval offsets).
	HasIval bool
	IvalLo  float64
	IvalHi  float64
}

const predictorWireVersion = 1

// Save serialises a trained predictor inside the checksummed envelope.
// Only GDBT predictors are persistable (the deployable model family:
// compact, CPU-cheap, interpretable — the reasons §5.2 gives for
// choosing GDBT on-device).
func (p *Predictor) Save(w io.Writer) error {
	g, ok := p.reg.(*gbdt.Model)
	if !ok {
		return fmt.Errorf("lumos5g: only GDBT predictors can be saved, not %s", p.model)
	}
	var model bytes.Buffer
	if err := g.Save(&model); err != nil {
		return err
	}
	dto := predictorDTO{
		Version: predictorWireVersion,
		Group:   p.group.String(),
		Names:   p.names,
		Model:   model.Bytes(),
	}
	if p.ival != nil {
		dto.HasIval = true
		dto.IvalLo = p.ival.Lo
		dto.IvalHi = p.ival.Hi
	}
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(dto); err != nil {
		return err
	}
	return writeEnvelope(w, magicPredictor, payload.Bytes())
}

// LoadPredictor reconstructs a predictor saved with Save. It accepts
// both enveloped artifacts and the legacy bare-gob format, and returns
// ErrArtifactTruncated / ErrArtifactCorrupt / ErrArtifactVersion
// (wrapped) on damaged or unsupported payloads.
func LoadPredictor(r io.Reader) (*Predictor, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(4)
	if err != nil && len(head) == 0 {
		return nil, fmt.Errorf("lumos5g: empty predictor artifact: %w", ErrArtifactTruncated)
	}
	if string(head) == magicPredictor {
		payload, err := readEnvelope(br, magicPredictor)
		if err != nil {
			return nil, err
		}
		return decodePredictor(bytes.NewReader(payload))
	}
	// Legacy pre-envelope artifact: bare gob.
	return decodePredictor(br)
}

// decodePredictor parses a predictorDTO gob stream and validates it.
func decodePredictor(r io.Reader) (*Predictor, error) {
	var dto predictorDTO
	if err := gob.NewDecoder(r).Decode(&dto); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, fmt.Errorf("lumos5g: decode predictor: %v: %w", err, ErrArtifactTruncated)
		}
		return nil, fmt.Errorf("lumos5g: decode predictor: %v: %w", err, ErrArtifactCorrupt)
	}
	if dto.Version > predictorWireVersion {
		return nil, fmt.Errorf("lumos5g: predictor wire v%d: %w", dto.Version, ErrArtifactVersion)
	}
	if dto.Version < 1 {
		return nil, fmt.Errorf("lumos5g: predictor wire v%d: %w", dto.Version, ErrArtifactCorrupt)
	}
	group, err := features.ParseGroup(dto.Group)
	if err != nil {
		return nil, fmt.Errorf("lumos5g: %v: %w", err, ErrArtifactCorrupt)
	}
	model, err := gbdt.Load(bytes.NewReader(dto.Model))
	if err != nil {
		return nil, fmt.Errorf("lumos5g: %v: %w", err, ErrArtifactCorrupt)
	}
	if model.NumFeatures() != len(dto.Names) {
		return nil, fmt.Errorf("lumos5g: model expects %d features but %d names stored: %w",
			model.NumFeatures(), len(dto.Names), ErrArtifactCorrupt)
	}
	p := &Predictor{
		group: group,
		model: ModelGDBT,
		reg:   model,
		names: dto.Names,
	}
	if dto.HasIval {
		if err := p.SetConformalOffsets(ml.ConformalOffsets{Lo: dto.IvalLo, Hi: dto.IvalHi}); err != nil {
			return nil, fmt.Errorf("lumos5g: %v: %w", err, ErrArtifactCorrupt)
		}
	}
	return p, nil
}

// chainDTO is the wire form of a fallback-chain bundle. Each tier is a
// complete enveloped predictor artifact, so every tier carries its own
// checksum.
type chainDTO struct {
	Version   int
	PriorMbps float64
	Tiers     [][]byte
	// Last-resort conformal offsets; optional gob fields, see
	// predictorDTO.
	HasHMIval bool
	HMLo      float64
	HMHi      float64
}

const chainWireVersion = 1

// Save serialises the chain as a bundle artifact: prior + every tier,
// each tier individually enveloped and checksummed.
func (c *FallbackChain) Save(w io.Writer) error {
	dto := chainDTO{Version: chainWireVersion, PriorMbps: c.prior}
	if c.hmOff != nil {
		dto.HasHMIval = true
		dto.HMLo = c.hmOff.Lo
		dto.HMHi = c.hmOff.Hi
	}
	for i, p := range c.tiers {
		var buf bytes.Buffer
		if err := p.Save(&buf); err != nil {
			return fmt.Errorf("lumos5g: save chain tier %d (%s): %w", i, p.group, err)
		}
		dto.Tiers = append(dto.Tiers, buf.Bytes())
	}
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(dto); err != nil {
		return err
	}
	return writeEnvelope(w, magicChain, payload.Bytes())
}

// LoadChain reconstructs a fallback chain saved with FallbackChain.Save.
func LoadChain(r io.Reader) (*FallbackChain, error) {
	payload, err := readEnvelope(bufio.NewReader(r), magicChain)
	if err != nil {
		return nil, err
	}
	var dto chainDTO
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&dto); err != nil {
		return nil, fmt.Errorf("lumos5g: decode chain: %v: %w", err, ErrArtifactCorrupt)
	}
	if dto.Version > chainWireVersion {
		return nil, fmt.Errorf("lumos5g: chain wire v%d: %w", dto.Version, ErrArtifactVersion)
	}
	if dto.Version < 1 {
		return nil, fmt.Errorf("lumos5g: chain wire v%d: %w", dto.Version, ErrArtifactCorrupt)
	}
	tiers := make([]*Predictor, 0, len(dto.Tiers))
	for i, raw := range dto.Tiers {
		p, err := LoadPredictor(bytes.NewReader(raw))
		if err != nil {
			return nil, fmt.Errorf("lumos5g: chain tier %d: %w", i, err)
		}
		tiers = append(tiers, p)
	}
	c, err := NewFallbackChain(dto.PriorMbps, tiers...)
	if err != nil {
		return nil, fmt.Errorf("lumos5g: %v: %w", err, ErrArtifactCorrupt)
	}
	if dto.HasHMIval {
		if err := c.SetLastResortOffsets(ml.ConformalOffsets{Lo: dto.HMLo, Hi: dto.HMHi}); err != nil {
			return nil, fmt.Errorf("lumos5g: %v: %w", err, ErrArtifactCorrupt)
		}
	}
	return c, nil
}

// atomicWriteFile writes via a temp file in the target directory, fsyncs,
// and renames into place, so readers — including a mapserver hot-reload
// watcher — only ever observe complete artifacts.
func atomicWriteFile(path string, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err := write(tmp); err != nil {
		return err
	}
	if err := tmp.Sync(); err != nil {
		return err
	}
	name := tmp.Name()
	if err := tmp.Close(); err != nil {
		return err
	}
	tmp = nil
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return err
	}
	// Durability of the rename itself; best-effort on filesystems that
	// do not support fsync on directories.
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}

// SaveFile atomically writes the predictor artifact to path.
func (p *Predictor) SaveFile(path string) error {
	return atomicWriteFile(path, p.Save)
}

// SaveFile atomically writes the chain bundle to path.
func (c *FallbackChain) SaveFile(path string) error {
	return atomicWriteFile(path, c.Save)
}

// LoadPredictorFile loads a single-predictor artifact from path.
func LoadPredictorFile(path string) (*Predictor, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadPredictor(f)
}

// LoadChainFile loads a chain bundle from path.
func LoadChainFile(path string) (*FallbackChain, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadChain(f)
}

// LoadAnyModelFile loads either artifact kind from path and returns it
// as a serving-ready chain: bundles load directly, single predictors are
// wrapped via ChainFromPredictor with priorMbps as the last resort.
func LoadAnyModelFile(path string, priorMbps float64) (*FallbackChain, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	head, _ := br.Peek(4)
	if string(head) == magicChain {
		return LoadChain(br)
	}
	p, err := LoadPredictor(br)
	if err != nil {
		return nil, err
	}
	return ChainFromPredictor(p, priorMbps)
}
