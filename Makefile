# Tier-1 verification and development targets.
#
# `make tier1` is the CI gate: build, vet, and the full test suite under
# the race detector (the fault-injection and resilience tests exercise
# heavy goroutine churn, so they must stay race-clean).

GO ?= go

.PHONY: tier1 build vet test race race-core bench fmt

tier1: ## build + vet + race-enabled test suite
	$(GO) build ./... && $(GO) vet ./... && $(GO) test -race ./...

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The packages the fault-injection layer touches, race-checked in
# isolation (fast inner loop while working on netem/mapserver).
race-core:
	$(GO) test -race ./internal/netem/... ./internal/mapserver/...

bench:
	$(GO) test -bench=. -benchtime=1x ./...

fmt:
	gofmt -w ./cmd ./internal ./examples *.go
