# Tier-1 verification and development targets.
#
# `make tier1` is the CI gate: build, vet, and the full test suite under
# the race detector (the fault-injection and resilience tests exercise
# heavy goroutine churn, so they must stay race-clean). `make fuzz` runs
# the parser/artifact fuzz targets for a short burst — not part of tier1,
# but run it after touching the CSV loader or the model artifact codec.

GO ?= go
FUZZTIME ?= 5s

.PHONY: tier1 build vet test race race-core race-parallel race-fleet race-ingest race-load race-abr parity bench bench-json bench-serve bench-fleet bench-ingest bench-load bench-abr fmt fuzz

tier1: ## build + vet + race-enabled test suite (run `make fuzz` too when touching parsers)
	$(GO) build ./... && $(GO) build -o bin/lumosbench ./cmd/lumosbench && ./bin/lumosbench -selftest && $(GO) vet ./... && $(GO) test -race ./internal/obs/... ./internal/mapserver/... && $(MAKE) race-fleet && $(MAKE) race-ingest && $(MAKE) race-load && $(MAKE) race-abr && $(GO) test -race ./...

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The packages the fault-injection and observability layers touch,
# race-checked in isolation (fast inner loop while working on
# netem/mapserver/obs).
race-core:
	$(GO) test -race ./internal/netem/... ./internal/mapserver/... ./internal/obs/...

# The deterministic-parallelism layer, race-checked in isolation (fast
# inner loop while working on the worker pipeline or the ML ensembles).
race-parallel:
	$(GO) test -race ./internal/sim/... ./internal/ml/... ./internal/rng/... ./internal/par/...

# The sharded serving fleet's chaos suite, race-checked: replicas
# killed/stalled/drained mid-load while the router must keep answering.
race-fleet:
	$(GO) test -race ./internal/fleet/...

# The streaming-ingestion loop, race-checked: gate + bounded queue +
# refit-and-hot-swap under concurrent predict and upload traffic.
race-ingest:
	$(GO) test -race ./internal/ingest/... ./internal/mapserver/... ./internal/sim/...

# The scenario generator and load harness, race-checked: a thousand UE
# goroutines hammering an in-process fleet plus the generator's
# concurrency-independence property.
race-load:
	$(GO) test -race ./internal/cityscape/... ./internal/load/... ./internal/env/...

# The ABR simulator/controllers and the interval serving path they
# consume, race-checked: simulator correctness pins, interval ordering
# across fallback tiers, and the dual-flavor prediction caches.
race-abr:
	$(GO) test -race ./internal/abr/... ./internal/mapserver/... ./internal/fleet/... .

# The serial-vs-parallel parity audit: byte-identical campaigns, models
# and batch predictions across worker counts.
parity:
	$(GO) test -race -run 'Parallel|Parity|Refit|Batch|Split|CheckpointEncode' ./internal/sim/... ./internal/ml/... ./internal/rng/... ./internal/mapserver/... .

bench:
	$(GO) test -bench=. -benchtime=1x ./...

# Machine-readable serial-vs-parallel speedup report (generate / train /
# predict). The JSON records num_cpu and go_max_procs so speedups are
# auditable against the hardware they ran on.
bench-json:
	$(GO) run ./cmd/lumosbench -parbench BENCH_parallel.json

# Serving fast-path report: compiled-vs-interpreted inference kernels
# (tree and LSTM, each with a bit-identity check and an int8 error
# budget), /predict handler allocations cold vs cached vs server-only,
# the JSON and binary /predict/batch encodings, and the pre-PR handler
# baseline for the alloc comparison. The same parity and budget gates
# run without timing loops as `lumosbench -selftest`, wired into tier1.
bench-serve:
	$(GO) run ./cmd/lumosbench -servebench BENCH_serve.json

# Fleet routing report: QPS and p50/p99 through the router for 1 shard
# vs N shards, and with one replica hard-killed mid-run.
bench-fleet:
	$(GO) run ./cmd/lumosbench -fleetbench BENCH_fleet.json

# Continuous-learning loop report: sustained ingest admission rate
# (direct and over HTTP), shed rate at overload, refit/hot-swap cost,
# and /predict p99 while refits run.
bench-ingest:
	$(GO) run ./cmd/lumosbench -ingestbench BENCH_ingest.json

# Load-harness report: 1000 simulated UEs walking a generated city,
# paced open-loop against an in-process fleet; achieved QPS, per-route
# p50/p95/p99 and the SLO verdict land in BENCH_load.json. Run
# `lumosload -url ...` by hand against a live lumosmapd/lumosfleet.
bench-load:
	$(GO) run ./cmd/lumosload -local -ues 1000 -qps 200 -duration 8s -warmup 2s -ramp 2s -shards 1 -replicas 1 \
		-slo "/predict:50:250,/predict/batch:100:500,/ingest:100:500" -out BENCH_load.json

# ABR campaign report: five controllers (reactive rate-based and
# buffer-based, predictive on p50, interval-aware predictive on p10,
# oracle) stream UE traces from five city scenarios, with forecasts
# fetched live from a calibrated in-process fleet's /predict/batch.
bench-abr:
	$(GO) run ./cmd/lumosbench -abrbench BENCH_abr.json

# Short fuzz burst over every fuzz target (one -fuzz per package per
# invocation is a `go test` restriction).
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzReadCSV -fuzztime=$(FUZZTIME) ./internal/dataset
	$(GO) test -run='^$$' -fuzz=FuzzLoadPredictor -fuzztime=$(FUZZTIME) .
	$(GO) test -run='^$$' -fuzz=FuzzIngestSample -fuzztime=$(FUZZTIME) ./internal/ingest
	$(GO) test -run='^$$' -fuzz=FuzzCompiledParity -fuzztime=$(FUZZTIME) ./internal/ml/compiled
	$(GO) test -run='^$$' -fuzz=FuzzSimulate -fuzztime=$(FUZZTIME) ./internal/abr

fmt:
	gofmt -w ./cmd ./internal ./examples *.go
