module lumos5g

go 1.22
