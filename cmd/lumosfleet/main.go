// Command lumosfleet runs a sharded, replicated serving fleet on one
// machine: the throughput map is partitioned across -shards shards by
// rendezvous hashing of its grid cells, each shard is served by
// -replicas supervised replicas on loopback TCP, and a failure-aware
// router fronts them on -listen.
//
// Usage:
//
//	lumosfleet -area Airport -listen :8460
//	lumosfleet -in airport.csv -shards 4 -replicas 3
//
// The router consistent-hashes /predict to the shard owning the
// query's map cell, probes replica health, breaks circuits on failing
// replicas, hedges slow attempts, and scatter-gathers /predict/batch
// and /cells.json with explicit partial results. /metrics serves the
// router's own fleet_* series plus a rollup of every replica's
// lumos_* series.
//
// With -chaos, POST /chaos/kill?replica=s0r0 hard-kills a replica
// (its connections reset, like kill -9; the supervisor restarts it
// with backoff) and POST /chaos/drain?shard=s2 removes a shard
// gracefully — the kill-a-shard demo in the README drives these while
// a probe loop shows zero dropped queries.
//
// On SIGINT/SIGTERM the router drains first (in-flight requests finish
// within -grace), then the shards shut down.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"lumos5g"
	"lumos5g/internal/fleet"
	"lumos5g/internal/ingest"
	"lumos5g/internal/mapserver"
)

// withChaosEndpoints mounts the fault-injection controls the kill-a-
// shard demo drives: kill a replica (the supervisor restarts it with
// backoff) or drain a whole shard gracefully. Demo tooling — off
// unless -chaos is set.
func withChaosEndpoints(next http.Handler, fl *fleet.Fleet, grace time.Duration) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !strings.HasPrefix(r.URL.Path, "/chaos/") {
			next.ServeHTTP(w, r)
			return
		}
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		switch r.URL.Path {
		case "/chaos/kill":
			id := r.URL.Query().Get("replica")
			if !fl.KillReplica(id) {
				http.Error(w, "unknown replica "+id, http.StatusNotFound)
				return
			}
			log.Printf("chaos: killed replica %s", id)
			fmt.Fprintf(w, "killed %s; the supervisor will restart it\n", id)
		case "/chaos/drain":
			id := r.URL.Query().Get("shard")
			dctx, cancel := context.WithTimeout(r.Context(), grace)
			defer cancel()
			if !fl.DrainShard(dctx, id) {
				http.Error(w, "unknown shard "+id, http.StatusNotFound)
				return
			}
			log.Printf("chaos: drained shard %s", id)
			fmt.Fprintf(w, "drained %s; its key range now routes to the remaining shards\n", id)
		default:
			http.NotFound(w, r)
		}
	})
}

func main() {
	in := flag.String("in", "", "dataset CSV (mutually exclusive with -area)")
	areaName := flag.String("area", "", "simulate this area instead of loading a CSV")
	passes := flag.Int("passes", 6, "walking passes when simulating")
	seed := flag.Uint64("seed", 1, "campaign/model seed")
	listen := flag.String("listen", "127.0.0.1:8460", "router listen address")
	minSamples := flag.Int("min", 3, "minimum samples per map cell")
	shards := flag.Int("shards", 3, "number of shards (map partitions)")
	replicas := flag.Int("replicas", 2, "replicas per shard")
	maxInFlight := flag.Int("max-inflight", 0, "per-replica in-flight request bound; excess is shed with 503 (0 = unbounded)")
	reqTimeout := flag.Duration("timeout", 10*time.Second, "per-request handler timeout on each replica")
	grace := flag.Duration("grace", 5*time.Second, "shutdown drain period")
	chaos := flag.Bool("chaos", false, "expose POST /chaos/kill?replica=ID and /chaos/drain?shard=ID fault-injection endpoints (demo only)")
	ingestOn := flag.Bool("ingest", false, "accept streamed samples on POST /ingest, routed to the owning shard; each replica refits on its own slice")
	refitInterval := flag.Duration("refit-interval", 30*time.Second, "how often each replica's refit loop retrains on its ingest window")
	refitGate := flag.Float64("refit-gate", 0.10, "holdout gate: reject a candidate whose MAE regresses past the live model by this fraction")
	refitWorkers := flag.Int("refit-workers", 0, "trainer parallelism for each replica's refits; 0 = one worker per CPU (fits are byte-identical for any count)")
	ingestCellCap := flag.Int("ingest-cell-cap", 0, "max window samples per grid cell on each replica, evicting oldest-in-cell (0 = unlimited)")
	flag.Parse()

	var d *lumos5g.Dataset
	switch {
	case *in != "":
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		var rerr error
		d, rerr = lumos5g.ReadCSV(f)
		f.Close()
		if rerr != nil {
			log.Fatal(rerr)
		}
	case *areaName != "":
		area, err := lumos5g.AreaByName(*areaName)
		if err != nil {
			log.Fatal(err)
		}
		cfg := lumos5g.CampaignConfig{Seed: *seed, WalkPasses: *passes, BackgroundUEProb: 0.12}
		raw := lumos5g.GenerateArea(area, cfg)
		d, _ = lumos5g.CleanDataset(raw)
	default:
		fmt.Fprintln(os.Stderr, "lumosfleet: one of -in or -area is required")
		os.Exit(2)
	}

	tm := lumos5g.BuildThroughputMap(d, *minSamples)
	chain, err := lumos5g.TrainCalibratedFallbackChain(d, lumos5g.DefaultFallbackGroups, lumos5g.ModelGDBT, lumos5g.Scale{Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}

	opts := []mapserver.Option{mapserver.WithRequestTimeout(*reqTimeout)}
	if *maxInFlight > 0 {
		opts = append(opts, mapserver.WithMaxInFlight(*maxInFlight))
	}
	fcfg := fleet.FleetConfig{
		Shards:     *shards,
		Replicas:   *replicas,
		ServerOpts: opts,
		Seed:       *seed,
	}
	if *ingestOn {
		fcfg.Ingest = &ingest.Config{
			CellCap: *ingestCellCap,
			Refit: ingest.RefitConfig{
				Interval: *refitInterval,
				GateFrac: *refitGate,
				Seed:     *seed,
				Workers:  *refitWorkers,
			},
		}
	}
	fl, err := fleet.StartFleet(tm, chain, fcfg)
	if err != nil {
		log.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	for _, sh := range fl.Topology().Shards {
		for _, rep := range sh.Replicas {
			log.Printf("shard %s replica %s at %s", sh.ID, rep.ID, rep.URL)
		}
	}
	log.Printf("fleet of %d shards x %d replicas serving %d map cells, model %s; router on http://%s",
		*shards, *replicas, len(tm.Cells), chain, *listen)
	if *ingestOn {
		log.Printf("ingest enabled: POST /ingest routes to owning shards; per-replica refit every %v, gate %.0f%%",
			*refitInterval, *refitGate*100)
	}

	var h http.Handler = fl.Router()
	if *chaos {
		h = withChaosEndpoints(h, fl, *grace)
		log.Printf("chaos endpoints enabled: POST /chaos/kill?replica=ID, POST /chaos/drain?shard=ID")
	}

	// The router drains first so no new work reaches the shards, then the
	// shards get the same grace budget to finish what they hold.
	err = mapserver.ListenAndServe(ctx, *listen, h, *grace)
	shutCtx, cancel := context.WithTimeout(context.Background(), *grace)
	fl.Shutdown(shutCtx)
	cancel()
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("shut down cleanly")
}
