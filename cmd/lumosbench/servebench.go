package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"testing"
	"time"

	"lumos5g"
	"lumos5g/internal/features"
	"lumos5g/internal/mapserver"
	"lumos5g/internal/ml/gbdt"
	"lumos5g/internal/par"
)

// The -servebench mode measures the serving fast path end to end: the
// compiled structure-of-arrays inference kernel against the interpreted
// per-row tree walk (serial and parallel, with a bit-identity check),
// and the HTTP /predict handlers cold versus cached. It writes the
// numbers as BENCH_serve.json, alongside the pre-kernel handler baseline
// so the allocation reduction is auditable in one file.

// kernelBenchEntry is one model-level timing.
type kernelBenchEntry struct {
	Name     string  `json:"name"`
	Rows     int     `json:"rows"` // rows predicted per op
	NsPerOp  float64 `json:"ns_per_op"`
	NsPerRow float64 `json:"ns_per_row"`
}

// handlerBenchEntry is one HTTP-handler timing (httptest.NewRecorder
// methodology: includes request/recorder setup, excludes the network).
type handlerBenchEntry struct {
	Name        string  `json:"name"`
	Queries     int     `json:"queries"` // queries answered per op
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	QPS         float64 `json:"qps"` // queries answered per second
	Note        string  `json:"note,omitempty"`
}

// serveBenchReport is the BENCH_serve.json schema.
type serveBenchReport struct {
	GeneratedAt string `json:"generated_at"`
	NumCPU      int    `json:"num_cpu"`
	GoMaxProcs  int    `json:"go_max_procs"`
	Seed        uint64 `json:"seed"`
	ModelTrees  int    `json:"model_trees"`
	ModelRows   int    `json:"model_rows"`

	Kernel []kernelBenchEntry `json:"kernel"`
	// Identical reports that the compiled kernel (single, serial batch,
	// parallel batch) reproduced the interpreted Predict bit for bit.
	Identical bool `json:"identical"`
	// Compiled-vs-interpreted batch speedups at equal parallelism.
	BatchSpeedupSerial   float64 `json:"batch_speedup_serial"`
	BatchSpeedupParallel float64 `json:"batch_speedup_parallel"`

	Handlers []handlerBenchEntry `json:"handlers"`
	// CachedSpeedup is cold /predict ns over cached /predict ns.
	CachedSpeedup float64 `json:"cached_speedup"`
	// PredictP50Ms/PredictP99Ms come from the server's own /predict
	// latency histogram accumulated over the handler benchmarks — the
	// same instrument /metrics exports, so the bench doubles as a check
	// that the observability layer prices requests sanely.
	PredictP50Ms float64 `json:"predict_p50_ms"`
	PredictP99Ms float64 `json:"predict_p99_ms"`
	// BaselinePrePR is the /predict handler before the compiled kernel,
	// cache and allocation work landed, measured with this same
	// methodology — the reference for the allocs_per_op reduction.
	BaselinePrePR handlerBenchEntry `json:"baseline_pre_pr"`
}

// prePRPredictBaseline was measured at commit ea13d9f (the parent of
// this change) with the identical dataset, model, query and
// httptest.NewRecorder loop used below (fastest of three -benchtime 2s
// runs; allocs and bytes were identical across runs).
var prePRPredictBaseline = handlerBenchEntry{
	Name:        "predict_pre_pr",
	Queries:     1,
	NsPerOp:     12687,
	AllocsPerOp: 43,
	BytesPerOp:  8816,
	QPS:         1e9 / 12687,
	Note:        "measured at commit ea13d9f, same methodology",
}

var (
	sinkFloat float64
	sinkSlice []float64
)

func kernelEntry(name string, rows int, r testing.BenchmarkResult) kernelBenchEntry {
	ns := float64(r.NsPerOp())
	return kernelBenchEntry{Name: name, Rows: rows, NsPerOp: ns, NsPerRow: ns / float64(rows)}
}

func handlerEntry(name string, queries int, r testing.BenchmarkResult) handlerBenchEntry {
	ns := float64(r.NsPerOp())
	return handlerBenchEntry{
		Name: name, Queries: queries, NsPerOp: ns,
		AllocsPerOp: r.AllocsPerOp(), BytesPerOp: r.AllocedBytesPerOp(),
		QPS: float64(queries) * 1e9 / ns,
	}
}

// benchGet times repeated GET requests against the handler in-process.
func benchGet(s http.Handler, url string) testing.BenchmarkResult {
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rr := httptest.NewRecorder()
			s.ServeHTTP(rr, httptest.NewRequest("GET", url, nil))
			if rr.Code != 200 {
				b.Fatalf("%s: %d %s", url, rr.Code, rr.Body.String())
			}
		}
	})
}

// benchPost times repeated POSTs of the same JSON body.
func benchPost(s http.Handler, url string, body []byte) testing.BenchmarkResult {
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rr := httptest.NewRecorder()
			s.ServeHTTP(rr, httptest.NewRequest("POST", url, bytes.NewReader(body)))
			if rr.Code != 200 {
				b.Fatalf("%s: %d %s", url, rr.Code, rr.Body.String())
			}
		}
	})
}

// runServeBench trains one serving model, benchmarks the inference
// kernel and the HTTP handlers, and writes the JSON report to path.
func runServeBench(path string, seed uint64) error {
	rep := serveBenchReport{
		GeneratedAt:   time.Now().UTC().Format(time.RFC3339),
		NumCPU:        runtime.NumCPU(),
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		Seed:          seed,
		BaselinePrePR: prePRPredictBaseline,
	}

	area, err := lumos5g.AreaByName("Airport")
	if err != nil {
		return err
	}
	cfg := lumos5g.CampaignConfig{Seed: seed, WalkPasses: 6, BackgroundUEProb: 0.1}
	clean, _ := lumos5g.CleanDataset(lumos5g.GenerateArea(area, cfg))
	mat := features.Build(clean, features.GroupLM)
	m := gbdt.New(gbdt.Config{Estimators: 60, MaxDepth: 6, Seed: seed})
	if err := m.Fit(mat.X, mat.Y); err != nil {
		return fmt.Errorf("servebench: fit: %w", err)
	}
	comp := m.Compiled()
	if comp == nil {
		return fmt.Errorf("servebench: model did not compile")
	}
	X := mat.X
	n := len(X)
	workers := runtime.GOMAXPROCS(0)
	rep.ModelTrees = comp.NumTrees()
	rep.ModelRows = n

	// Bit-identity first: a fast wrong kernel is worthless.
	want := make([]float64, n)
	for i, x := range X {
		want[i] = m.Predict(x)
	}
	rep.Identical = true
	serialOut := make([]float64, n)
	comp.PredictInto(X, serialOut, 0, n)
	parOut := m.PredictBatch(X)
	for i := range X {
		if serialOut[i] != want[i] || parOut[i] != want[i] || comp.Predict(X[i]) != want[i] {
			rep.Identical = false
			break
		}
	}

	// Model-level kernel timings.
	rep.Kernel = append(rep.Kernel, kernelEntry("single_interpreted", 1,
		testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sinkFloat = m.Predict(X[i%n])
			}
		})))
	rep.Kernel = append(rep.Kernel, kernelEntry("single_compiled", 1,
		testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sinkFloat = comp.Predict(X[i%n])
			}
		})))
	rBatchInterpSerial := testing.Benchmark(func(b *testing.B) {
		out := make([]float64, n)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j, x := range X {
				out[j] = m.Predict(x)
			}
		}
		sinkSlice = out
	})
	rep.Kernel = append(rep.Kernel, kernelEntry("batch_interpreted_serial", n, rBatchInterpSerial))
	rBatchCompSerial := testing.Benchmark(func(b *testing.B) {
		out := make([]float64, n)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			comp.PredictInto(X, out, 0, n)
		}
		sinkSlice = out
	})
	rep.Kernel = append(rep.Kernel, kernelEntry("batch_compiled_serial", n, rBatchCompSerial))
	// The pre-kernel PredictBatch fanned per-row interpreted walks across
	// the worker pool; reconstruct it so the parallel comparison is
	// like for like.
	rBatchInterpPar := testing.Benchmark(func(b *testing.B) {
		out := make([]float64, n)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			par.Chunks(workers, n, func(lo, hi int) {
				for j := lo; j < hi; j++ {
					out[j] = m.Predict(X[j])
				}
			})
		}
		sinkSlice = out
	})
	rep.Kernel = append(rep.Kernel, kernelEntry("batch_interpreted_parallel", n, rBatchInterpPar))
	rBatchCompPar := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sinkSlice = m.PredictBatch(X)
		}
	})
	rep.Kernel = append(rep.Kernel, kernelEntry("batch_compiled_parallel", n, rBatchCompPar))
	rep.BatchSpeedupSerial = float64(rBatchInterpSerial.NsPerOp()) / float64(rBatchCompSerial.NsPerOp())
	rep.BatchSpeedupParallel = float64(rBatchInterpPar.NsPerOp()) / float64(rBatchCompPar.NsPerOp())

	// Handler-level timings: the same single query against a cache-less
	// server (every request walks the model) and the default server
	// (every request after the first is a cache hit).
	tm := lumos5g.BuildThroughputMap(clean, 3)
	pred, err := lumos5g.Train(clean, lumos5g.GroupLM, lumos5g.ModelGDBT, lumos5g.Scale{Seed: seed})
	if err != nil {
		return err
	}
	sCold, err := mapserver.New(tm, pred, mapserver.WithPredictCacheSize(0))
	if err != nil {
		return err
	}
	sCached, err := mapserver.New(tm, pred)
	if err != nil {
		return err
	}
	lat := clean.Records[50].Latitude
	lon := clean.Records[50].Longitude
	url := fmt.Sprintf("/predict?lat=%f&lon=%f&speed=4&bearing=10", lat, lon)

	rCold := benchGet(sCold, url)
	rep.Handlers = append(rep.Handlers, handlerEntry("predict_cold", 1, rCold))
	// One warm-up request fills the cache entry, then every op hits.
	warm := httptest.NewRecorder()
	sCached.ServeHTTP(warm, httptest.NewRequest("GET", url, nil))
	rCached := benchGet(sCached, url)
	rep.Handlers = append(rep.Handlers, handlerEntry("predict_cached", 1, rCached))
	rep.CachedSpeedup = float64(rCold.NsPerOp()) / float64(rCached.NsPerOp())
	rep.PredictP50Ms = sCached.RouteLatencyQuantile("/predict", 0.5) * 1000
	rep.PredictP99Ms = sCached.RouteLatencyQuantile("/predict", 0.99) * 1000

	// Batch handler: one POST carrying batchN distinct queries (distinct
	// coordinates, so the batch path exercises the kernel, not the cache).
	const batchN = 512
	queries := make([]map[string]float64, batchN)
	for i := range queries {
		rec := clean.Records[i%len(clean.Records)]
		queries[i] = map[string]float64{
			"lat": rec.Latitude, "lon": rec.Longitude,
			"speed": 4, "bearing": float64(i % 360),
		}
	}
	body, err := json.Marshal(queries)
	if err != nil {
		return err
	}
	rBatch := benchPost(sCold, "/predict/batch", body)
	e := handlerEntry("predict_batch", batchN, rBatch)
	e.Note = fmt.Sprintf("%d queries per request", batchN)
	rep.Handlers = append(rep.Handlers, e)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}

	for _, k := range rep.Kernel {
		fmt.Printf("%-27s %9.0f ns/op  %8.1f ns/row\n", k.Name, k.NsPerOp, k.NsPerRow)
	}
	fmt.Printf("batch speedup: %.2fx serial, %.2fx parallel  identical=%t\n",
		rep.BatchSpeedupSerial, rep.BatchSpeedupParallel, rep.Identical)
	for _, h := range rep.Handlers {
		fmt.Printf("%-27s %9.0f ns/op  %4d allocs/op  %6d B/op  %10.0f q/s\n",
			h.Name, h.NsPerOp, h.AllocsPerOp, h.BytesPerOp, h.QPS)
	}
	fmt.Printf("cached speedup: %.2fx  (pre-PR baseline: %d allocs/op, %.0f ns/op)\n",
		rep.CachedSpeedup, rep.BaselinePrePR.AllocsPerOp, rep.BaselinePrePR.NsPerOp)
	fmt.Printf("/predict latency (server histogram): p50 %.3f ms, p99 %.3f ms\n",
		rep.PredictP50Ms, rep.PredictP99Ms)
	fmt.Printf("wrote %s\n", path)

	if !rep.Identical {
		return fmt.Errorf("servebench: compiled kernel diverged from interpreted Predict")
	}
	return nil
}
