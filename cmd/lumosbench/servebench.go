package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"testing"
	"time"

	"lumos5g"
	"lumos5g/internal/features"
	"lumos5g/internal/mapserver"
	"lumos5g/internal/ml/gbdt"
	"lumos5g/internal/ml/nn"
	"lumos5g/internal/par"
	"lumos5g/internal/wire"
)

// The -servebench mode measures the serving fast path end to end: the
// compiled structure-of-arrays tree kernel against the interpreted
// per-row walk (serial and parallel, with a bit-identity check), the
// compiled LSTM kernel against the interpreted nn forward pass
// (bit-identity for float64, bounded error + pinned fingerprint for
// int8), and the HTTP handlers — /predict cold vs cached, JSON batch vs
// the columnar binary frame. It writes the numbers as BENCH_serve.json,
// alongside the pre-kernel handler baseline so the allocation reduction
// is auditable in one file.
//
// -selftest runs the same parity and allocation-budget checks without
// the timing loops, as a tier-1 gate: it exits non-zero if any compiled
// kernel diverges from its interpreted reference, the binary wire
// diverges from JSON, or /predict busts its allocation budget.

// predictAllocBudget is the checked-in per-request allocation budget
// for a cached /predict, measured server-side (reused request, discard
// writer) so harness allocations — recorder, request parsing — do not
// drown the handler's own. The httptest rows remain in the report for
// comparability with the pre-PR baseline, which includes ~17 allocs of
// per-op harness floor.
const predictAllocBudget = 12

// lstmInt8ErrBudget bounds the int8 kernel's relative error against the
// float64 kernel (same budget the compiled-package tests pin).
const lstmInt8ErrBudget = 0.05

// kernelBenchEntry is one model-level timing (fastest of kernelRuns
// runs, so one noisy neighbour does not poison the row).
type kernelBenchEntry struct {
	Name     string  `json:"name"`
	Rows     int     `json:"rows"` // rows predicted per op
	NsPerOp  float64 `json:"ns_per_op"`
	NsPerRow float64 `json:"ns_per_row"`
}

// handlerBenchEntry is one HTTP-handler timing.
type handlerBenchEntry struct {
	Name        string  `json:"name"`
	Queries     int     `json:"queries"` // queries answered per op
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	QPS         float64 `json:"qps"` // queries answered per second
	Note        string  `json:"note,omitempty"`
}

// lstmKernelReport carries the recurrent kernel's parity verdicts.
type lstmKernelReport struct {
	// Identical: the compiled float64 kernel reproduced the interpreted
	// nn forward pass bit for bit on every probe.
	Identical bool `json:"identical"`
	// Int8MaxRelErr is the quantized kernel's worst error vs the float
	// kernel, relative to max(|prediction|, output scale) — the scale
	// floor keeps a sub-Mbps wobble on a near-zero output from reading
	// as a huge "relative" error when the signal lives in the hundreds
	// of Mbps. Int8ErrBudget is the checked-in bound.
	Int8MaxRelErr float64 `json:"int8_max_rel_err"`
	Int8ErrBudget float64 `json:"int8_err_budget"`
	// OutputScale is the mean absolute float-kernel prediction the
	// error denominator floors at.
	OutputScale float64 `json:"output_scale"`
	// Int8Fingerprint pins the quantized weights (FNV-1a over every
	// int8 byte and scale bit pattern).
	Int8Fingerprint string `json:"int8_fingerprint"`
	// Int8WeightBytes is the quantized matrix footprint (8x smaller
	// than the float64 slab).
	Int8WeightBytes int `json:"int8_weight_bytes"`
}

// serveBenchReport is the BENCH_serve.json schema.
type serveBenchReport struct {
	GeneratedAt string `json:"generated_at"`
	NumCPU      int    `json:"num_cpu"`
	GoMaxProcs  int    `json:"go_max_procs"`
	Seed        uint64 `json:"seed"`
	ModelTrees  int    `json:"model_trees"`
	ModelRows   int    `json:"model_rows"`
	// KernelRuns: each kernel row is the fastest of this many runs.
	KernelRuns int `json:"kernel_runs"`

	Kernel []kernelBenchEntry `json:"kernel"`
	// Identical reports that the compiled tree kernel (single, serial
	// batch, parallel batch) reproduced the interpreted Predict bit for
	// bit.
	Identical bool `json:"identical"`
	// Compiled-vs-interpreted batch speedups at equal parallelism.
	BatchSpeedupSerial   float64 `json:"batch_speedup_serial"`
	BatchSpeedupParallel float64 `json:"batch_speedup_parallel"`

	// LSTM is the compiled recurrent kernel's parity block.
	LSTM lstmKernelReport `json:"lstm"`

	Handlers []handlerBenchEntry `json:"handlers"`
	// PredictAllocBudget is the checked-in budget the server-only
	// cached /predict row is gated on.
	PredictAllocBudget int `json:"predict_alloc_budget"`
	// BinaryBatchMatchesJSON: the binary /predict/batch frame decoded
	// to exactly the JSON rows (and re-encoded byte-identically).
	BinaryBatchMatchesJSON bool `json:"binary_batch_matches_json"`
	// CachedSpeedup is cold /predict ns over cached /predict ns.
	CachedSpeedup float64 `json:"cached_speedup"`
	// PredictP50Ms/PredictP99Ms come from the server's own /predict
	// latency histogram accumulated over the handler benchmarks — the
	// same instrument /metrics exports, so the bench doubles as a check
	// that the observability layer prices requests sanely.
	PredictP50Ms float64 `json:"predict_p50_ms"`
	PredictP99Ms float64 `json:"predict_p99_ms"`
	// BaselinePrePR is the /predict handler before the compiled kernel,
	// cache and allocation work landed, measured with the httptest
	// methodology — the reference for the allocs_per_op reduction.
	BaselinePrePR handlerBenchEntry `json:"baseline_pre_pr"`
}

// prePRPredictBaseline was measured at commit ea13d9f with the
// identical dataset, model, query and httptest.NewRecorder loop used
// below (fastest of three -benchtime 2s runs; allocs and bytes were
// identical across runs).
var prePRPredictBaseline = handlerBenchEntry{
	Name:        "predict_pre_pr",
	Queries:     1,
	NsPerOp:     12687,
	AllocsPerOp: 43,
	BytesPerOp:  8816,
	QPS:         1e9 / 12687,
	Note:        "measured at commit ea13d9f, same httptest methodology",
}

var (
	sinkFloat float64
	sinkSlice []float64
)

// kernelRuns is how many times each kernel benchmark repeats; the
// fastest run is reported (single-CPU VMs jitter ±15%).
const kernelRuns = 3

// fastest runs f kernelRuns times and keeps the lowest ns/op.
func fastest(f func(b *testing.B)) testing.BenchmarkResult {
	best := testing.Benchmark(f)
	for i := 1; i < kernelRuns; i++ {
		if r := testing.Benchmark(f); r.NsPerOp() < best.NsPerOp() {
			best = r
		}
	}
	return best
}

func kernelEntry(name string, rows int, r testing.BenchmarkResult) kernelBenchEntry {
	ns := float64(r.NsPerOp())
	return kernelBenchEntry{Name: name, Rows: rows, NsPerOp: ns, NsPerRow: ns / float64(rows)}
}

func handlerEntry(name string, queries int, r testing.BenchmarkResult) handlerBenchEntry {
	ns := float64(r.NsPerOp())
	return handlerBenchEntry{
		Name: name, Queries: queries, NsPerOp: ns,
		AllocsPerOp: r.AllocsPerOp(), BytesPerOp: r.AllocedBytesPerOp(),
		QPS: float64(queries) * 1e9 / ns,
	}
}

// discardWriter is the server-only measurement sink: a ResponseWriter
// with no recorder bookkeeping, so allocs/op is the handler's own.
type discardWriter struct {
	h    http.Header
	code int
	n    int
}

func (w *discardWriter) Header() http.Header { return w.h }
func (w *discardWriter) WriteHeader(c int)   { w.code = c }
func (w *discardWriter) Write(p []byte) (int, error) {
	w.n += len(p)
	return len(p), nil
}

// benchGet times repeated GET requests against the handler in-process
// (httptest methodology: includes per-op recorder+request setup,
// comparable with the pre-PR baseline).
func benchGet(s http.Handler, url string) testing.BenchmarkResult {
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rr := httptest.NewRecorder()
			s.ServeHTTP(rr, httptest.NewRequest("GET", url, nil))
			if rr.Code != 200 {
				b.Fatalf("%s: %d %s", url, rr.Code, rr.Body.String())
			}
		}
	})
}

// benchGetServerOnly times the same GET with one reused request and a
// discard writer, so the row isolates the server's own work.
func benchGetServerOnly(s http.Handler, url string) testing.BenchmarkResult {
	req := httptest.NewRequest("GET", url, nil)
	w := &discardWriter{h: make(http.Header)}
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			w.code, w.n = 0, 0
			s.ServeHTTP(w, req)
			if w.code != 200 {
				b.Fatalf("%s: status %d", url, w.code)
			}
		}
	})
}

// benchPost times repeated POSTs of the same body with explicit
// Content-Type/Accept media types.
func benchPost(s http.Handler, url string, body []byte, contentType, accept string) testing.BenchmarkResult {
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rr := httptest.NewRecorder()
			req := httptest.NewRequest("POST", url, bytes.NewReader(body))
			req.Header.Set("Content-Type", contentType)
			if accept != "" {
				req.Header.Set("Accept", accept)
			}
			s.ServeHTTP(rr, req)
			if rr.Code != 200 {
				b.Fatalf("%s: %d %s", url, rr.Code, rr.Body.String())
			}
		}
	})
}

// fitServeLSTM trains the recurrent reference model and compiles it:
// the interpreted regressor stays as the parity oracle, its compiled
// float64 kernel and int8 variant are what serving runs.
func fitServeLSTM(X [][]float64, y []float64, seed uint64) (*nn.LSTMRegressor, [][][]float64, error) {
	seqs := make([][][]float64, len(X))
	for i, row := range X {
		seqs[i] = [][]float64{row}
	}
	m, err := nn.NewLSTMRegressor(nn.Seq2SeqConfig{
		InputDim: len(X[0]), Hidden: 16, Layers: 1,
		Epochs: 3, Batch: 64, Seed: seed,
	})
	if err != nil {
		return nil, nil, err
	}
	if err := m.Fit(seqs, y); err != nil {
		return nil, nil, err
	}
	return m, seqs, nil
}

// lstmParity fills the report block: bit-identity of the float kernel
// against the interpreted forward pass over every probe, and the int8
// kernel's worst scale-relative error plus its pinned fingerprint.
func lstmParity(m *nn.LSTMRegressor, seqs [][][]float64) (lstmKernelReport, error) {
	rep := lstmKernelReport{Identical: true, Int8ErrBudget: lstmInt8ErrBudget}
	k, err := m.Compiled()
	if err != nil {
		return rep, err
	}
	q := k.QuantizeInt8()
	rep.Int8Fingerprint = fmt.Sprintf("%016x", q.Fingerprint())
	rep.Int8WeightBytes = q.WeightBytes()
	floats := make([]float64, len(seqs))
	quants := make([]float64, len(seqs))
	for i, seq := range seqs {
		want, err := m.Predict(seq)
		if err != nil {
			return rep, err
		}
		if floats[i], err = k.PredictNext(seq); err != nil {
			return rep, err
		}
		if floats[i] != want {
			rep.Identical = false
		}
		if quants[i], err = q.PredictNext(seq); err != nil {
			return rep, err
		}
	}
	for _, f := range floats {
		rep.OutputScale += abs(f)
	}
	rep.OutputScale /= float64(len(floats))
	if rep.OutputScale < 1 {
		rep.OutputScale = 1
	}
	for i, f := range floats {
		if rel := abs(quants[i]-f) / max(abs(f), rep.OutputScale); rel > rep.Int8MaxRelErr {
			rep.Int8MaxRelErr = rel
		}
	}
	return rep, nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// buildBatchBodies renders the same batchN queries as the JSON array
// and the binary frame.
func buildBatchBodies(clean *lumos5g.Dataset, batchN int) ([]byte, []byte, error) {
	queries := make([]map[string]float64, batchN)
	wq := make([]wire.Query, batchN)
	for i := range queries {
		rec := clean.Records[i%len(clean.Records)]
		sp, br := 4.0, float64(i%360)
		queries[i] = map[string]float64{
			"lat": rec.Latitude, "lon": rec.Longitude,
			"speed": sp, "bearing": br,
		}
		s, b := sp, br
		wq[i] = wire.Query{Lat: rec.Latitude, Lon: rec.Longitude, Speed: &s, Bearing: &b}
	}
	jsonBody, err := json.Marshal(queries)
	if err != nil {
		return nil, nil, err
	}
	return jsonBody, wire.AppendQueries(nil, wq), nil
}

// checkBinaryBatch posts both encodings once and verifies the binary
// frame carries exactly the JSON rows and re-encodes byte-identically.
func checkBinaryBatch(s http.Handler, jsonBody, binBody []byte, batchN int) (bool, error) {
	post := func(body []byte, ct, accept string) (*httptest.ResponseRecorder, error) {
		rr := httptest.NewRecorder()
		req := httptest.NewRequest("POST", "/predict/batch", bytes.NewReader(body))
		req.Header.Set("Content-Type", ct)
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		s.ServeHTTP(rr, req)
		if rr.Code != 200 {
			return nil, fmt.Errorf("batch %s: %d %s", ct, rr.Code, rr.Body.String())
		}
		return rr, nil
	}
	jr, err := post(jsonBody, "application/json", "")
	if err != nil {
		return false, err
	}
	br, err := post(binBody, wire.ContentType, wire.ContentType)
	if err != nil {
		return false, err
	}
	var jsonRows []struct {
		Mbps     float64  `json:"mbps"`
		Class    string   `json:"class"`
		Source   string   `json:"source"`
		Tier     int      `json:"tier"`
		Degraded bool     `json:"degraded"`
		Missing  []string `json:"missing"`
	}
	if err := json.Unmarshal(jr.Body.Bytes(), &jsonRows); err != nil {
		return false, err
	}
	rows, err := wire.DecodeResults(br.Body.Bytes(), batchN)
	if err != nil {
		return false, err
	}
	if len(rows) != len(jsonRows) {
		return false, nil
	}
	for i, r := range rows {
		j := jsonRows[i]
		if r.Mbps != j.Mbps || r.Class != j.Class || r.Source != j.Source ||
			r.Tier != j.Tier || r.Degraded != j.Degraded || len(r.Missing) != len(j.Missing) {
			return false, nil
		}
	}
	again, err := wire.AppendResults(nil, rows)
	if err != nil {
		return false, err
	}
	return bytes.Equal(again, br.Body.Bytes()), nil
}

// runServeBench trains the serving models, benchmarks the inference
// kernels and the HTTP handlers, and writes the JSON report to path.
func runServeBench(path string, seed uint64) error {
	rep := serveBenchReport{
		GeneratedAt:        time.Now().UTC().Format(time.RFC3339),
		NumCPU:             runtime.NumCPU(),
		GoMaxProcs:         runtime.GOMAXPROCS(0),
		Seed:               seed,
		KernelRuns:         kernelRuns,
		PredictAllocBudget: predictAllocBudget,
		BaselinePrePR:      prePRPredictBaseline,
	}

	area, err := lumos5g.AreaByName("Airport")
	if err != nil {
		return err
	}
	cfg := lumos5g.CampaignConfig{Seed: seed, WalkPasses: 6, BackgroundUEProb: 0.1}
	clean, _ := lumos5g.CleanDataset(lumos5g.GenerateArea(area, cfg))
	mat := features.Build(clean, features.GroupLM)
	m := gbdt.New(gbdt.Config{Estimators: 60, MaxDepth: 6, Seed: seed})
	if err := m.Fit(mat.X, mat.Y); err != nil {
		return fmt.Errorf("servebench: fit: %w", err)
	}
	comp := m.Compiled()
	if comp == nil {
		return fmt.Errorf("servebench: model did not compile")
	}
	X := mat.X
	n := len(X)
	workers := runtime.GOMAXPROCS(0)
	rep.ModelTrees = comp.NumTrees()
	rep.ModelRows = n

	// Bit-identity first: a fast wrong kernel is worthless.
	want := make([]float64, n)
	for i, x := range X {
		want[i] = m.Predict(x)
	}
	rep.Identical = true
	serialOut := make([]float64, n)
	comp.PredictInto(X, serialOut, 0, n)
	parOut := m.PredictBatch(X)
	for i := range X {
		if serialOut[i] != want[i] || parOut[i] != want[i] || comp.Predict(X[i]) != want[i] {
			rep.Identical = false
			break
		}
	}

	// Model-level tree-kernel timings, fastest of kernelRuns each.
	rep.Kernel = append(rep.Kernel, kernelEntry("single_interpreted", 1,
		fastest(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sinkFloat = m.Predict(X[i%n])
			}
		})))
	rep.Kernel = append(rep.Kernel, kernelEntry("single_compiled", 1,
		fastest(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sinkFloat = comp.Predict(X[i%n])
			}
		})))
	rBatchInterpSerial := fastest(func(b *testing.B) {
		out := make([]float64, n)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j, x := range X {
				out[j] = m.Predict(x)
			}
		}
		sinkSlice = out
	})
	rep.Kernel = append(rep.Kernel, kernelEntry("batch_interpreted_serial", n, rBatchInterpSerial))
	rBatchCompSerial := fastest(func(b *testing.B) {
		out := make([]float64, n)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			comp.PredictInto(X, out, 0, n)
		}
		sinkSlice = out
	})
	rep.Kernel = append(rep.Kernel, kernelEntry("batch_compiled_serial", n, rBatchCompSerial))
	// The pre-kernel PredictBatch fanned per-row interpreted walks across
	// the worker pool; reconstruct it so the parallel comparison is
	// like for like.
	rBatchInterpPar := fastest(func(b *testing.B) {
		out := make([]float64, n)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			par.Chunks(workers, n, func(lo, hi int) {
				for j := lo; j < hi; j++ {
					out[j] = m.Predict(X[j])
				}
			})
		}
		sinkSlice = out
	})
	rep.Kernel = append(rep.Kernel, kernelEntry("batch_interpreted_parallel", n, rBatchInterpPar))
	rBatchCompPar := fastest(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sinkSlice = m.PredictBatch(X)
		}
	})
	rep.Kernel = append(rep.Kernel, kernelEntry("batch_compiled_parallel", n, rBatchCompPar))
	rep.BatchSpeedupSerial = float64(rBatchInterpSerial.NsPerOp()) / float64(rBatchCompSerial.NsPerOp())
	rep.BatchSpeedupParallel = float64(rBatchInterpPar.NsPerOp()) / float64(rBatchCompPar.NsPerOp())

	// Recurrent kernel: parity block plus timing rows (the serving
	// sequence form is a length-1 window — the Tabular adapter's shape).
	lstm, seqs, err := fitServeLSTM(X, mat.Y, seed)
	if err != nil {
		return fmt.Errorf("servebench: lstm fit: %w", err)
	}
	rep.LSTM, err = lstmParity(lstm, seqs)
	if err != nil {
		return fmt.Errorf("servebench: lstm parity: %w", err)
	}
	lk, err := lstm.Compiled()
	if err != nil {
		return err
	}
	lq := lk.QuantizeInt8()
	rep.Kernel = append(rep.Kernel, kernelEntry("lstm_interpreted_single", 1,
		fastest(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if sinkFloat, err = lstm.Predict(seqs[i%n]); err != nil {
					b.Fatal(err)
				}
			}
		})))
	rep.Kernel = append(rep.Kernel, kernelEntry("lstm_compiled_single", 1,
		fastest(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if sinkFloat, err = lk.PredictNext(seqs[i%n]); err != nil {
					b.Fatal(err)
				}
			}
		})))
	rep.Kernel = append(rep.Kernel, kernelEntry("lstm_compiled_int8_single", 1,
		fastest(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if sinkFloat, err = lq.PredictNext(seqs[i%n]); err != nil {
					b.Fatal(err)
				}
			}
		})))

	// Handler-level timings: the same single query against a cache-less
	// server (every request walks the model) and the default server
	// (every request after the first is a cache hit).
	tm := lumos5g.BuildThroughputMap(clean, 3)
	pred, err := lumos5g.Train(clean, lumos5g.GroupLM, lumos5g.ModelGDBT, lumos5g.Scale{Seed: seed})
	if err != nil {
		return err
	}
	sCold, err := mapserver.New(tm, pred, mapserver.WithPredictCacheSize(0))
	if err != nil {
		return err
	}
	sCached, err := mapserver.New(tm, pred)
	if err != nil {
		return err
	}
	lat := clean.Records[50].Latitude
	lon := clean.Records[50].Longitude
	url := fmt.Sprintf("/predict?lat=%f&lon=%f&speed=4&bearing=10", lat, lon)

	rCold := benchGet(sCold, url)
	rep.Handlers = append(rep.Handlers, handlerEntry("predict_cold", 1, rCold))
	// One warm-up request fills the cache entry, then every op hits.
	warm := httptest.NewRecorder()
	sCached.ServeHTTP(warm, httptest.NewRequest("GET", url, nil))
	rCached := benchGet(sCached, url)
	rep.Handlers = append(rep.Handlers, handlerEntry("predict_cached", 1, rCached))
	rServer := benchGetServerOnly(sCached, url)
	eServer := handlerEntry("predict_cached_server_only", 1, rServer)
	eServer.Note = fmt.Sprintf("reused request + discard writer; gated on the %d allocs/op budget", predictAllocBudget)
	rep.Handlers = append(rep.Handlers, eServer)
	rep.CachedSpeedup = float64(rCold.NsPerOp()) / float64(rCached.NsPerOp())
	rep.PredictP50Ms = sCached.RouteLatencyQuantile("/predict", 0.5) * 1000
	rep.PredictP99Ms = sCached.RouteLatencyQuantile("/predict", 0.99) * 1000

	// Batch handler: one POST carrying batchN distinct queries (distinct
	// coordinates, so the batch path exercises the kernel, not the
	// cache), in both encodings, with a row-for-row parity check.
	const batchN = 512
	jsonBody, binBody, err := buildBatchBodies(clean, batchN)
	if err != nil {
		return err
	}
	rep.BinaryBatchMatchesJSON, err = checkBinaryBatch(sCold, jsonBody, binBody, batchN)
	if err != nil {
		return err
	}
	rBatch := benchPost(sCold, "/predict/batch", jsonBody, "application/json", "")
	e := handlerEntry("predict_batch", batchN, rBatch)
	e.Note = fmt.Sprintf("%d queries per request, JSON both ways", batchN)
	rep.Handlers = append(rep.Handlers, e)
	rBatchBin := benchPost(sCold, "/predict/batch", binBody, wire.ContentType, wire.ContentType)
	eBin := handlerEntry("predict_batch_binary", batchN, rBatchBin)
	eBin.Note = fmt.Sprintf("%d queries per request, columnar frame both ways (%d B vs %d B JSON request)",
		batchN, len(binBody), len(jsonBody))
	rep.Handlers = append(rep.Handlers, eBin)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}

	for _, k := range rep.Kernel {
		fmt.Printf("%-27s %9.0f ns/op  %8.1f ns/row\n", k.Name, k.NsPerOp, k.NsPerRow)
	}
	fmt.Printf("batch speedup: %.2fx serial, %.2fx parallel  identical=%t\n",
		rep.BatchSpeedupSerial, rep.BatchSpeedupParallel, rep.Identical)
	fmt.Printf("lstm: identical=%t  int8 max rel err %.2e (budget %.2e)  fingerprint %s\n",
		rep.LSTM.Identical, rep.LSTM.Int8MaxRelErr, rep.LSTM.Int8ErrBudget, rep.LSTM.Int8Fingerprint)
	for _, h := range rep.Handlers {
		fmt.Printf("%-27s %9.0f ns/op  %4d allocs/op  %6d B/op  %10.0f q/s\n",
			h.Name, h.NsPerOp, h.AllocsPerOp, h.BytesPerOp, h.QPS)
	}
	fmt.Printf("cached speedup: %.2fx  (pre-PR baseline: %d allocs/op, %.0f ns/op)\n",
		rep.CachedSpeedup, rep.BaselinePrePR.AllocsPerOp, rep.BaselinePrePR.NsPerOp)
	fmt.Printf("binary batch matches json: %t\n", rep.BinaryBatchMatchesJSON)
	fmt.Printf("/predict latency (server histogram): p50 %.3f ms, p99 %.3f ms\n",
		rep.PredictP50Ms, rep.PredictP99Ms)
	fmt.Printf("wrote %s\n", path)

	return serveBenchVerdict(rep.Identical, rep.LSTM, rep.BinaryBatchMatchesJSON, rServer.AllocsPerOp())
}

// serveBenchVerdict turns the parity/budget outcomes into a single
// error (nil = all gates pass), shared by -servebench and -selftest.
func serveBenchVerdict(treeIdentical bool, lstm lstmKernelReport, binaryOK bool, predictAllocs int64) error {
	switch {
	case !treeIdentical:
		return fmt.Errorf("servebench: compiled tree kernel diverged from interpreted Predict")
	case !lstm.Identical:
		return fmt.Errorf("servebench: compiled LSTM kernel diverged from interpreted forward pass")
	case lstm.Int8MaxRelErr > lstm.Int8ErrBudget:
		return fmt.Errorf("servebench: int8 LSTM kernel error %.4f exceeds budget %.4f",
			lstm.Int8MaxRelErr, lstm.Int8ErrBudget)
	case !binaryOK:
		return fmt.Errorf("servebench: binary /predict/batch diverged from the JSON rows")
	case predictAllocs > predictAllocBudget:
		return fmt.Errorf("servebench: cached /predict allocates %d/op, budget %d (server-only methodology)",
			predictAllocs, predictAllocBudget)
	}
	return nil
}

// runServeSelftest is the tier-1 quick gate: the same parity and
// allocation-budget checks as -servebench on a smaller campaign, with
// no timing loops and no report file.
func runServeSelftest(seed uint64) error {
	area, err := lumos5g.AreaByName("Airport")
	if err != nil {
		return err
	}
	cfg := lumos5g.CampaignConfig{Seed: seed, WalkPasses: 3, BackgroundUEProb: 0.1}
	clean, _ := lumos5g.CleanDataset(lumos5g.GenerateArea(area, cfg))
	mat := features.Build(clean, features.GroupLM)
	m := gbdt.New(gbdt.Config{Estimators: 40, MaxDepth: 5, Seed: seed})
	if err := m.Fit(mat.X, mat.Y); err != nil {
		return fmt.Errorf("selftest: fit: %w", err)
	}
	comp := m.Compiled()
	if comp == nil {
		return fmt.Errorf("selftest: model did not compile")
	}
	treeIdentical := true
	batch := m.PredictBatch(mat.X)
	for i, x := range mat.X {
		if w := m.Predict(x); comp.Predict(x) != w || batch[i] != w {
			treeIdentical = false
			break
		}
	}
	fmt.Printf("selftest: tree kernel identical=%t over %d rows\n", treeIdentical, len(mat.X))

	lstmCfg := nn.Seq2SeqConfig{InputDim: len(mat.X[0]), Hidden: 8, Layers: 1, Epochs: 2, Batch: 64, Seed: seed}
	lm, err := nn.NewLSTMRegressor(lstmCfg)
	if err != nil {
		return err
	}
	seqs := make([][][]float64, len(mat.X))
	for i, row := range mat.X {
		seqs[i] = [][]float64{row}
	}
	if err := lm.Fit(seqs, mat.Y); err != nil {
		return fmt.Errorf("selftest: lstm fit: %w", err)
	}
	lstm, err := lstmParity(lm, seqs)
	if err != nil {
		return fmt.Errorf("selftest: lstm parity: %w", err)
	}
	fmt.Printf("selftest: lstm identical=%t int8 max rel err %.2e (budget %.2e) fingerprint %s\n",
		lstm.Identical, lstm.Int8MaxRelErr, lstm.Int8ErrBudget, lstm.Int8Fingerprint)

	tm := lumos5g.BuildThroughputMap(clean, 3)
	pred, err := lumos5g.Train(clean, lumos5g.GroupLM, lumos5g.ModelGDBT, lumos5g.Scale{Seed: seed})
	if err != nil {
		return err
	}
	s, err := mapserver.New(tm, pred)
	if err != nil {
		return err
	}
	jsonBody, binBody, err := buildBatchBodies(clean, 64)
	if err != nil {
		return err
	}
	binaryOK, err := checkBinaryBatch(s, jsonBody, binBody, 64)
	if err != nil {
		return err
	}
	fmt.Printf("selftest: binary batch matches json=%t\n", binaryOK)

	url := fmt.Sprintf("/predict?lat=%f&lon=%f&speed=4&bearing=10",
		clean.Records[50].Latitude, clean.Records[50].Longitude)
	req := httptest.NewRequest("GET", url, nil)
	w := &discardWriter{h: make(http.Header)}
	serve := func() {
		w.code, w.n = 0, 0
		s.ServeHTTP(w, req)
	}
	serve() // warm the cache entry and every pool
	if w.code != 200 {
		return fmt.Errorf("selftest: /predict status %d", w.code)
	}
	allocs := int64(testing.AllocsPerRun(200, serve))
	fmt.Printf("selftest: cached /predict %d allocs/op (budget %d, server-only methodology)\n",
		allocs, predictAllocBudget)

	if err := serveBenchVerdict(treeIdentical, lstm, binaryOK, allocs); err != nil {
		return err
	}
	fmt.Println("selftest: PASS")
	return nil
}
