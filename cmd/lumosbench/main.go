// Command lumosbench regenerates the paper's tables and figures from the
// simulated campaign.
//
// Usage:
//
//	lumosbench [-run id[,id...]] [-profile quick|paper] [-seed N] [-values]
//	lumosbench -parbench BENCH_parallel.json [-parworkers N]
//	lumosbench -servebench BENCH_serve.json
//	lumosbench -selftest
//	lumosbench -fleetbench BENCH_fleet.json
//	lumosbench -ingestbench BENCH_ingest.json
//	lumosbench -abrbench BENCH_abr.json
//
// With no -run flag every experiment runs in paper order. The quick
// profile (default) uses a reduced campaign and scaled-down models that
// preserve the qualitative results; -profile paper approaches the paper's
// scale (long runtime).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"lumos5g/internal/experiments"
)

func main() {
	run := flag.String("run", "", "comma-separated experiment ids (default: all)")
	profile := flag.String("profile", "quick", "quick or paper")
	seed := flag.Uint64("seed", 1, "campaign seed")
	values := flag.Bool("values", false, "also print named values")
	list := flag.Bool("list", false, "list experiment ids and exit")
	parbench := flag.String("parbench", "", "run serial-vs-parallel speedup benchmarks, write JSON to this path, and exit")
	parworkers := flag.Int("parworkers", 0, "worker count for -parbench (0 = one per CPU)")
	servebench := flag.String("servebench", "", "run serving fast-path benchmarks (compiled kernel, prediction cache, handlers), write JSON to this path, and exit")
	selftest := flag.Bool("selftest", false, "run the serving fast-path parity and allocation-budget gates (no timing loops) and exit non-zero on any failure")
	fleetbench := flag.String("fleetbench", "", "run sharded-fleet routing benchmarks (1 vs N shards, replica killed mid-run), write JSON to this path, and exit")
	ingestbench := flag.String("ingestbench", "", "run streaming-ingest and refit-hot-swap benchmarks (admission rate, shed at overload, refit cost, predict p99 during refit), write JSON to this path, and exit")
	abrbench := flag.String("abrbench", "", "run the ABR streaming campaign (five controllers over five city scenarios, forecasts from a live calibrated fleet), write JSON to this path, and exit")
	flag.Parse()

	if *abrbench != "" {
		if err := runABRBench(*abrbench, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "lumosbench:", err)
			os.Exit(1)
		}
		return
	}

	if *ingestbench != "" {
		if err := runIngestBench(*ingestbench, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "lumosbench:", err)
			os.Exit(1)
		}
		return
	}

	if *fleetbench != "" {
		if err := runFleetBench(*fleetbench, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "lumosbench:", err)
			os.Exit(1)
		}
		return
	}

	if *parbench != "" {
		if err := runParBench(*parbench, *parworkers, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "lumosbench:", err)
			os.Exit(1)
		}
		return
	}

	if *servebench != "" {
		if err := runServeBench(*servebench, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "lumosbench:", err)
			os.Exit(1)
		}
		return
	}

	if *selftest {
		if err := runServeSelftest(*seed); err != nil {
			fmt.Fprintln(os.Stderr, "lumosbench:", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, e := range experiments.Registry() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}

	var prof experiments.Profile
	switch *profile {
	case "quick":
		prof = experiments.ProfileQuick
	case "paper":
		prof = experiments.ProfilePaper
	default:
		fmt.Fprintf(os.Stderr, "lumosbench: unknown profile %q\n", *profile)
		os.Exit(2)
	}
	lab := experiments.NewLab(experiments.Options{Profile: prof, Seed: *seed})

	var selected []experiments.Experiment
	if *run == "" {
		selected = experiments.Registry()
	} else {
		for _, id := range strings.Split(*run, ",") {
			e, err := experiments.ByID(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, "lumosbench:", err)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	for _, e := range selected {
		start := time.Now()
		rep := e.Run(lab)
		fmt.Print(rep.String())
		if *values {
			fmt.Print(rep.ValuesString())
		}
		fmt.Printf("-- %s done in %.1fs --\n\n", e.ID, time.Since(start).Seconds())
	}
}
