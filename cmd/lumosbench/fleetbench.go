package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"lumos5g"
	"lumos5g/internal/fleet"
	"lumos5g/internal/mapserver"
)

// The -fleetbench mode measures the sharded fleet's routing overhead
// and degradation cost end to end: the same query mix against a
// 1-shard fleet, an N-shard fleet, and an N-shard fleet with one
// replica hard-killed a quarter of the way into the run (the
// supervisor restarts it with backoff, so the tail captures failover,
// hedging, and recovery). Requests go through the real Router over
// real loopback TCP to the replicas. It writes BENCH_fleet.json.

// fleetScenarioResult is one load run's outcome.
type fleetScenarioResult struct {
	Name      string  `json:"name"`
	Shards    int     `json:"shards"`
	Replicas  int     `json:"replicas"`
	DurationS float64 `json:"duration_s"`
	Requests  int     `json:"requests"`
	Failures  int     `json:"failures"` // non-200 single-query responses
	QPS       float64 `json:"qps"`
	P50Ms     float64 `json:"p50_ms"`
	P99Ms     float64 `json:"p99_ms"`
	Note      string  `json:"note,omitempty"`
}

// fleetBenchReport is the BENCH_fleet.json schema.
type fleetBenchReport struct {
	GeneratedAt string `json:"generated_at"`
	NumCPU      int    `json:"num_cpu"`
	GoMaxProcs  int    `json:"go_max_procs"`
	Seed        uint64 `json:"seed"`
	Workers     int    `json:"workers"`
	MapCells    int    `json:"map_cells"`

	Scenarios []fleetScenarioResult `json:"scenarios"`
	// KilledP99OverHealthy is the one-replica-killed p99 divided by the
	// healthy N-shard p99 — the latency price of riding out a failure.
	KilledP99OverHealthy float64 `json:"killed_p99_over_healthy"`
}

// quantileMs picks the q-th quantile from sorted millisecond samples.
func quantileMs(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

// fleetLoad hammers the handler with workers goroutines for duration,
// cycling through urls, and returns per-request latencies plus the
// count of non-200 responses. mid, if non-nil, runs once in a side
// goroutine a quarter of the way in (the chaos injection hook).
func fleetLoad(h http.Handler, urls []string, workers int, duration time.Duration, mid func()) (latencies []float64, failures int) {
	deadline := time.Now().Add(duration)
	if mid != nil {
		go func() {
			time.Sleep(duration / 4)
			mid()
		}()
	}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var lats []float64
			fails := 0
			for i := w; time.Now().Before(deadline); i++ {
				start := time.Now()
				rr := httptest.NewRecorder()
				h.ServeHTTP(rr, httptest.NewRequest("GET", urls[i%len(urls)], nil))
				lats = append(lats, float64(time.Since(start).Nanoseconds())/1e6)
				if rr.Code != http.StatusOK {
					fails++
				}
			}
			mu.Lock()
			latencies = append(latencies, lats...)
			failures += fails
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	sort.Float64s(latencies)
	return latencies, failures
}

// runFleetBench trains one serving model, runs the three fleet load
// scenarios, and writes the JSON report to path.
func runFleetBench(path string, seed uint64) error {
	rep := fleetBenchReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		NumCPU:      runtime.NumCPU(),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Seed:        seed,
	}

	area, err := lumos5g.AreaByName("Airport")
	if err != nil {
		return err
	}
	cfg := lumos5g.CampaignConfig{Seed: seed, WalkPasses: 6, BackgroundUEProb: 0.1}
	clean, _ := lumos5g.CleanDataset(lumos5g.GenerateArea(area, cfg))
	tm := lumos5g.BuildThroughputMap(clean, 3)
	chain, err := lumos5g.TrainFallbackChain(clean, lumos5g.DefaultFallbackGroups, lumos5g.ModelGDBT, lumos5g.Scale{Seed: seed})
	if err != nil {
		return err
	}
	rep.MapCells = len(tm.Cells)

	// Query mix: points spread across the campaign walk, so the load
	// touches every shard's key range. Distinct bearings defeat the
	// replica-side prediction cache enough to keep the model hot.
	var urls []string
	step := len(clean.Records) / 128
	if step == 0 {
		step = 1
	}
	for i := 0; i < len(clean.Records); i += step {
		r := clean.Records[i]
		urls = append(urls, fmt.Sprintf("/predict?lat=%f&lon=%f&speed=4&bearing=%d", r.Latitude, r.Longitude, i%360))
	}

	workers := runtime.GOMAXPROCS(0)
	if workers > 8 {
		workers = 8
	}
	rep.Workers = workers
	const loadDuration = 2 * time.Second
	const nShards = 3

	router := fleet.RouterConfig{
		HedgeDelay:    25 * time.Millisecond,
		ProbeInterval: 100 * time.Millisecond,
	}
	serverOpts := []mapserver.Option{mapserver.WithMetricsRoute(false)}

	run := func(name string, shards, replicas int, note string, mid func(*fleet.Fleet)) error {
		fl, err := fleet.StartFleet(tm, chain, fleet.FleetConfig{
			Shards:     shards,
			Replicas:   replicas,
			ServerOpts: serverOpts,
			Router:     router,
			Seed:       seed + 1,
		})
		if err != nil {
			return fmt.Errorf("fleetbench %s: %w", name, err)
		}
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			fl.Shutdown(ctx)
			cancel()
		}()
		// Warm up connections and caches so every scenario starts even.
		warm, _ := fleetLoad(fl.Router(), urls, workers, 200*time.Millisecond, nil)
		_ = warm
		var midFn func()
		if mid != nil {
			midFn = func() { mid(fl) }
		}
		lats, fails := fleetLoad(fl.Router(), urls, workers, loadDuration, midFn)
		rep.Scenarios = append(rep.Scenarios, fleetScenarioResult{
			Name: name, Shards: shards, Replicas: replicas,
			DurationS: loadDuration.Seconds(),
			Requests:  len(lats), Failures: fails,
			QPS:   float64(len(lats)) / loadDuration.Seconds(),
			P50Ms: quantileMs(lats, 0.5), P99Ms: quantileMs(lats, 0.99),
			Note: note,
		})
		return nil
	}

	if err := run("one_shard", 1, 2, "whole map on a single shard", nil); err != nil {
		return err
	}
	if err := run("n_shards_healthy", nShards, 2, "map partitioned by rendezvous hash", nil); err != nil {
		return err
	}
	if err := run("n_shards_replica_killed", nShards, 2,
		"replica s0r0 hard-killed at t/4; supervisor restarts it with backoff", func(fl *fleet.Fleet) {
			fl.KillReplica("s0r0")
		}); err != nil {
		return err
	}

	var healthyP99, killedP99 float64
	for _, s := range rep.Scenarios {
		switch s.Name {
		case "n_shards_healthy":
			healthyP99 = s.P99Ms
		case "n_shards_replica_killed":
			killedP99 = s.P99Ms
		}
	}
	if healthyP99 > 0 {
		rep.KilledP99OverHealthy = killedP99 / healthyP99
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}

	for _, s := range rep.Scenarios {
		fmt.Printf("%-24s %d shards x %d  %8.0f q/s  p50 %6.2f ms  p99 %6.2f ms  %d/%d failed\n",
			s.Name, s.Shards, s.Replicas, s.QPS, s.P50Ms, s.P99Ms, s.Failures, s.Requests)
	}
	fmt.Printf("killed/healthy p99: %.2fx\n", rep.KilledP99OverHealthy)
	fmt.Printf("wrote %s\n", path)
	return nil
}
