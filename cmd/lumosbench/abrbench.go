package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"time"

	"lumos5g"
	"lumos5g/internal/abr"
	"lumos5g/internal/cityscape"
	"lumos5g/internal/dataset"
	"lumos5g/internal/env"
	"lumos5g/internal/fleet"
	"lumos5g/internal/load"
	"lumos5g/internal/ml/gbdt"
	"lumos5g/internal/sim"
)

// The -abrbench mode runs the paper's motivating use case (§2.2, §8.2)
// end to end: a calibrated fleet serves p10/p50/p90 bands over a
// generated city, UE trajectories from five scenario axes become
// streaming sessions, and per-trace forecasts are sourced from live
// /predict/batch?intervals=1 lookahead over the trace's future
// positions — not from the ground truth. Five controllers stream every
// trace: reactive rate-based and buffer-based baselines, the predictive
// controller on the p50 forecast, the interval-aware variant (the same
// policy picking rungs against the conservative p10 band edge), and the
// oracle fed the true future throughput. It writes BENCH_abr.json.

const (
	abrHorizonSec   = 8   // forecast lookahead per chunk decision
	abrMaxTraceSec  = 180 // cap per-session length
	abrMinTraceSec  = 48  // drop fragments too short to stream
	abrTracesPerScn = 6   // sessions per scenario axis
)

// abrControllerResult aggregates one controller over a scenario's traces.
type abrControllerResult struct {
	Name            string  `json:"name"`
	QoE             float64 `json:"qoe"`
	RebufferSec     float64 `json:"rebuffer_sec"`
	Switches        float64 `json:"switches"`
	MeanBitrateMbps float64 `json:"mean_bitrate_mbps"`
	// QoEvsOracle normalises against the oracle's mean QoE (1.0 = oracle).
	QoEvsOracle float64 `json:"qoe_vs_oracle"`
}

// abrScenarioResult is one scenario axis's outcome.
type abrScenarioResult struct {
	Name         string                `json:"name"`
	Traces       int                   `json:"traces"`
	TraceSeconds int                   `json:"trace_seconds"`
	Controllers  []abrControllerResult `json:"controllers"`
	// IntervalBeatsRateBased is the headline comparison: did picking
	// rungs against the p10 band edge out-QoE the reactive baseline?
	IntervalBeatsRateBased bool `json:"interval_beats_rate_based"`
}

// abrBenchReport is the BENCH_abr.json schema.
type abrBenchReport struct {
	GeneratedAt string    `json:"generated_at"`
	Seed        uint64    `json:"seed"`
	HorizonSec  int       `json:"horizon_sec"`
	Ladder      []float64 `json:"ladder_mbps"`

	Scenarios []abrScenarioResult `json:"scenarios"`
	// IntervalWins counts scenarios where the interval-aware controller
	// beats rate-based on QoE.
	IntervalWins int `json:"interval_wins"`
}

// abrTrace is one UE session: the true per-second throughput plus the
// positions the forecasts are fetched for.
type abrTrace struct {
	truth []float64
	recs  []dataset.Record
}

// collectTraces splits a campaign dataset into per-UE sessions, in
// first-appearance order, keeping up to abrTracesPerScn usable ones.
func collectTraces(d *lumos5g.Dataset) []abrTrace {
	type key struct {
		area, traj string
		pass       int
	}
	byUE := map[key][]dataset.Record{}
	var order []key
	for _, r := range d.Records {
		k := key{r.Area, r.Trajectory, r.Pass}
		if _, seen := byUE[k]; !seen {
			order = append(order, k)
		}
		byUE[k] = append(byUE[k], r)
	}
	// Longest-first so short stationary fragments don't crowd out the
	// mobile sessions the use case is about; ties break on appearance
	// order, keeping the pick deterministic.
	sort.SliceStable(order, func(i, j int) bool {
		return len(byUE[order[i]]) > len(byUE[order[j]])
	})
	var traces []abrTrace
	for _, k := range order {
		recs := byUE[k]
		if len(recs) < abrMinTraceSec {
			continue
		}
		if len(recs) > abrMaxTraceSec {
			recs = recs[:abrMaxTraceSec]
		}
		tr := abrTrace{recs: recs}
		for _, r := range recs {
			v := r.ThroughputMbps
			if v < 0 {
				v = 0
			}
			tr.truth = append(tr.truth, v)
		}
		traces = append(traces, tr)
		if len(traces) == abrTracesPerScn {
			break
		}
	}
	return traces
}

// fetchForecasts asks the live fleet for the whole trace's positions in
// one /predict/batch?intervals=1 call and returns the per-second p50
// and p10 series the controllers will window over.
func fetchForecasts(baseURL string, tr abrTrace) (p50, p10 []float64, err error) {
	type row struct {
		Lat     float64 `json:"lat"`
		Lon     float64 `json:"lon"`
		Speed   float64 `json:"speed"`
		Bearing float64 `json:"bearing"`
	}
	rows := make([]row, len(tr.recs))
	for i, r := range tr.recs {
		rows[i] = row{Lat: r.Latitude, Lon: r.Longitude, Speed: r.SpeedKmh, Bearing: r.CompassDeg}
	}
	body, err := json.Marshal(rows)
	if err != nil {
		return nil, nil, err
	}
	resp, err := http.Post(baseURL+"/predict/batch?intervals=1", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, nil, fmt.Errorf("abrbench: batch status %d: %s", resp.StatusCode, data)
	}
	var br fleet.BatchResponse
	if err := json.Unmarshal(data, &br); err != nil {
		return nil, nil, err
	}
	if len(br.Rows) != len(rows) {
		return nil, nil, fmt.Errorf("abrbench: %d rows back for %d queries", len(br.Rows), len(rows))
	}
	p50 = make([]float64, len(br.Rows))
	p10 = make([]float64, len(br.Rows))
	for i, r := range br.Rows {
		// A row a shard could not serve (partial answer) forecasts as a
		// dead zone — the conservative reading of "no prediction".
		var mid, lo float64
		if r.P50 != nil {
			mid = *r.P50
		} else if r.Mbps != nil {
			mid = *r.Mbps
		}
		if r.P10 != nil {
			lo = *r.P10
		} else {
			lo = mid
		}
		p50[i] = clampNonNeg(mid)
		p10[i] = clampNonNeg(lo)
	}
	return p50, p10, nil
}

func clampNonNeg(v float64) float64 {
	if !(v > 0) { // catches negatives and NaN
		return 0
	}
	return v
}

// windowSource turns a per-second series into a Simulate forecast
// source: at time t it serves series[t : t+abrHorizonSec], holding the
// final value when the session outruns the series.
func windowSource(series []float64) func(int) []float64 {
	return func(t int) []float64 {
		if t < 0 {
			t = 0
		}
		if t >= len(series) {
			t = len(series) - 1
		}
		end := t + abrHorizonSec
		if end > len(series) {
			end = len(series)
		}
		return series[t:end]
	}
}

// reactiveSource is the in-situ estimator the conventional controllers
// run on (§2.2): the mean of the last three *observed* seconds — no
// map, no model, no future.
func reactiveSource(truth []float64) func(int) []float64 {
	return func(t int) []float64 {
		if t <= 0 {
			return []float64{truth[0]}
		}
		lo := t - 3
		if lo < 0 {
			lo = 0
		}
		var sum float64
		for _, v := range truth[lo:t] {
			sum += v
		}
		return []float64{sum / float64(t-lo)}
	}
}

// abrRun pairs a controller with its forecast source.
type abrRun struct {
	ctrl abr.Controller
	fc   func(tr abrTrace, p50, p10 []float64) func(int) []float64
}

func abrRuns() []abrRun {
	h := abrHorizonSec
	reactive := func(tr abrTrace, _, _ []float64) func(int) []float64 { return reactiveSource(tr.truth) }
	return []abrRun{
		{abr.RateBased{}, reactive},
		{abr.BufferBased{}, reactive},
		{abr.Predictive{HorizonSec: h}, func(_ abrTrace, p50, _ []float64) func(int) []float64 { return windowSource(p50) }},
		// The interval-aware variant: identical policy, conservative band
		// edge as the forecast.
		{abr.Named{Controller: abr.Predictive{HorizonSec: h}, Label: "predictive+p10"},
			func(_ abrTrace, _, p10 []float64) func(int) []float64 { return windowSource(p10) }},
		{abr.Oracle{HorizonSec: h}, func(tr abrTrace, _, _ []float64) func(int) []float64 { return windowSource(tr.truth) }},
	}
}

// runABRScenario streams every trace under every controller and
// aggregates per-controller means.
func runABRScenario(name string, raw *lumos5g.Dataset, baseURL string) (abrScenarioResult, error) {
	clean, _ := lumos5g.CleanDataset(raw)
	traces := collectTraces(clean)
	if len(traces) == 0 {
		return abrScenarioResult{}, fmt.Errorf("abrbench %s: no usable traces (clean=%d records)", name, clean.Len())
	}

	runs := abrRuns()
	res := abrScenarioResult{Name: name, Traces: len(traces)}
	sums := make([]abrControllerResult, len(runs))
	for i, r := range runs {
		sums[i].Name = r.ctrl.Name()
	}
	cfg := abr.Config{} // defaults: DefaultLadder, 30 s buffer, λ=3000, μ=1

	for _, tr := range traces {
		res.TraceSeconds += len(tr.truth)
		p50, p10, err := fetchForecasts(baseURL, tr)
		if err != nil {
			return abrScenarioResult{}, err
		}
		for i, r := range runs {
			m, err := abr.Simulate(cfg, r.ctrl, tr.truth, r.fc(tr, p50, p10))
			if err != nil {
				return abrScenarioResult{}, fmt.Errorf("abrbench %s/%s: %w", name, r.ctrl.Name(), err)
			}
			sums[i].QoE += m.QoE
			sums[i].RebufferSec += m.RebufferSec
			sums[i].Switches += float64(m.Switches)
			sums[i].MeanBitrateMbps += m.MeanBitrateMbps
		}
	}

	n := float64(len(traces))
	var rateQoE, intervalQoE, oracleQoE float64
	for i := range sums {
		sums[i].QoE /= n
		sums[i].RebufferSec /= n
		sums[i].Switches /= n
		sums[i].MeanBitrateMbps /= n
		switch sums[i].Name {
		case "rate-based":
			rateQoE = sums[i].QoE
		case "predictive+p10":
			intervalQoE = sums[i].QoE
		case "oracle":
			oracleQoE = sums[i].QoE
		}
	}
	for i := range sums {
		if oracleQoE != 0 {
			sums[i].QoEvsOracle = sums[i].QoE / oracleQoE
		}
	}
	res.Controllers = sums
	res.IntervalBeatsRateBased = intervalQoE > rateQoE
	return res, nil
}

// runABRBench generates a city, starts a calibrated local fleet, runs
// the five scenario campaigns through the live forecast path, and
// writes the JSON report to path.
func runABRBench(path string, seed uint64) error {
	city := cityscape.Generate(cityscape.Config{Seed: seed, BlocksX: 3, BlocksY: 2, Routes: 4, RouteBlocks: 3})
	// The forecast quality is the experiment here, so the fleet gets a
	// denser drive-test campaign and a bigger model than the load
	// harness's latency-focused defaults.
	lf, err := load.StartLocalFleet(city, load.LocalConfig{
		Seed: seed, NoIngest: true, CampaignUEs: 96,
		GBDT: gbdt.Config{Estimators: 120, MaxDepth: 6},
	})
	if err != nil {
		return err
	}
	defer lf.Close()

	outage, err := city.Outage(city.Towers[0].ID, 12, seed+5)
	if err != nil {
		return err
	}
	type scenario struct {
		name  string
		sim   sim.Config
		areas []*env.Area
	}
	mixed := city.Mixed(12, seed+1)
	crowd := city.Crowd(12, seed+2)
	transit := city.Transit(12, seed+3)
	ramp := city.Mixed(6, seed+4)
	scenarios := []scenario{
		{"mixed", mixed.Sim, []*env.Area{mixed.Area}},
		{"crowd", crowd.Sim, []*env.Area{crowd.Area}},
		{"transit", transit.Sim, []*env.Area{transit.Area}},
		// The weather ramp reruns a small mixed fleet at each attenuation
		// step, pooling all steps' traces into one scenario.
		{"weather_ramp", ramp.Sim, city.WeatherRamp(3, 12)},
		{outage.Name, outage.Sim, []*env.Area{outage.Area}},
	}

	rep := abrBenchReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Seed:        seed,
		HorizonSec:  abrHorizonSec,
		Ladder:      abr.DefaultLadder,
	}
	for _, sc := range scenarios {
		raw := sim.RunCampaignParallel(sc.sim, sc.areas, 0)
		res, err := runABRScenario(sc.name, raw, lf.URL)
		if err != nil {
			return err
		}
		rep.Scenarios = append(rep.Scenarios, res)
		if res.IntervalBeatsRateBased {
			rep.IntervalWins++
		}
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}

	for _, s := range rep.Scenarios {
		fmt.Printf("%s (%d traces, %d s):\n", s.Name, s.Traces, s.TraceSeconds)
		for _, c := range s.Controllers {
			fmt.Printf("  %-16s QoE %9.0f  rebuffer %6.1f s  switches %4.1f  bitrate %5.0f Mbps  vs-oracle %5.2f\n",
				c.Name, c.QoE, c.RebufferSec, c.Switches, c.MeanBitrateMbps, c.QoEvsOracle)
		}
	}
	fmt.Printf("interval-aware beats rate-based in %d/%d scenarios\n", rep.IntervalWins, len(rep.Scenarios))
	fmt.Printf("wrote %s\n", path)
	return nil
}
