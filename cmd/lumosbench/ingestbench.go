package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lumos5g"
	"lumos5g/internal/ingest"
	"lumos5g/internal/mapserver"
	"lumos5g/internal/obs"
)

// The -ingestbench mode prices the continuous-learning loop: how fast
// the gate + queue + window pipeline admits field samples (direct and
// through the full HTTP handler), how the bounded queue sheds at
// overload, what a gated refit-and-hot-swap costs, and what /predict
// latency looks like while refits are running. It writes the numbers as
// BENCH_ingest.json.

type ingestRateEntry struct {
	Name          string  `json:"name"`
	Batch         int     `json:"batch"` // samples per op
	NsPerOp       float64 `json:"ns_per_op"`
	NsPerSample   float64 `json:"ns_per_sample"`
	SamplesPerSec float64 `json:"samples_per_sec"`
	AllocsPerOp   int64   `json:"allocs_per_op"`
}

type ingestBenchReport struct {
	GeneratedAt string `json:"generated_at"`
	NumCPU      int    `json:"num_cpu"`
	GoMaxProcs  int    `json:"go_max_procs"`
	Seed        uint64 `json:"seed"`
	Samples     int    `json:"samples"` // campaign records replayed

	// Sustained admission rate, direct (decoded samples) and through
	// the full mapserver POST /ingest handler (JSON decode included).
	Rates []ingestRateEntry `json:"rates"`

	// Overload: a deliberately tiny queue with no drain. Shedding must
	// be explicit (counted, not blocking) and cheap.
	OverloadOffered  int     `json:"overload_offered"`
	OverloadAccepted int     `json:"overload_accepted"`
	OverloadShed     int     `json:"overload_shed"`
	OverloadShedRate float64 `json:"overload_shed_rate"`
	ShedNsPerSample  float64 `json:"shed_ns_per_sample"`

	// Refit cycle cost on the full window, and the hot-swap alone (the
	// window a predict query could observe a generation change).
	RefitCycles    int     `json:"refit_cycles"`
	RefitWindow    int     `json:"refit_window_samples"`
	RefitMeanMs    float64 `json:"refit_mean_ms"`
	RefitSwapped   int     `json:"refit_swapped"`
	RefitRejected  int     `json:"refit_rejected"`
	SwapNsPerOp    float64 `json:"swap_ns_per_op"`
	PredictP50Ms   float64 `json:"predict_p50_ms_during_refit"`
	PredictP99Ms   float64 `json:"predict_p99_ms_during_refit"`
	PredictQueries int64   `json:"predict_queries_during_refit"`
	PredictFailed  int64   `json:"predict_failed_during_refit"`
}

func ingestRateEntryOf(name string, batch int, r testing.BenchmarkResult) ingestRateEntry {
	ns := float64(r.NsPerOp())
	return ingestRateEntry{
		Name: name, Batch: batch, NsPerOp: ns,
		NsPerSample:   ns / float64(batch),
		SamplesPerSec: float64(batch) * 1e9 / ns,
		AllocsPerOp:   r.AllocsPerOp(),
	}
}

// runIngestBench replays a generated campaign through the ingest
// pipeline under several regimes and writes the JSON report to path.
func runIngestBench(path string, seed uint64) error {
	rep := ingestBenchReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		NumCPU:      runtime.NumCPU(),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Seed:        seed,
	}

	area, err := lumos5g.AreaByName("Airport")
	if err != nil {
		return err
	}
	cfg := lumos5g.CampaignConfig{Seed: seed, WalkPasses: 6, BackgroundUEProb: 0.1}
	clean, _ := lumos5g.CleanDataset(lumos5g.GenerateArea(area, cfg))
	samples := make([]ingest.Sample, clean.Len())
	for i := range clean.Records {
		samples[i] = ingest.SampleFromRecord(&clean.Records[i])
	}
	rep.Samples = len(samples)
	const batch = 256
	if len(samples) < batch {
		return fmt.Errorf("ingestbench: campaign too small (%d samples)", len(samples))
	}

	// Sustained rate, direct: gate + ring append + window add per op.
	ingDirect := ingest.New(obs.NewRegistry(), ingest.Config{QueueSize: batch, WindowSize: 1 << 16})
	rDirect := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			off := (i * batch) % (len(samples) - batch)
			// Gate rejections are part of the measured pipeline (the
			// online trace-mean rule may condemn a whole trace); only a
			// queue drop would mean the drain cadence is wrong.
			res := ingDirect.Ingest(samples[off : off+batch])
			if res.Dropped > 0 {
				b.Fatalf("queue dropped despite per-op drain: %+v", res)
			}
			ingDirect.Drain()
		}
	})
	rep.Rates = append(rep.Rates, ingestRateEntryOf("ingest_direct", batch, rDirect))

	// Sustained rate through the mapserver handler: JSON decode, gate,
	// enqueue, response encode — what a UE upload actually costs.
	tm := lumos5g.BuildThroughputMap(clean, 3)
	srv, err := mapserver.NewWithChain(tm, nil)
	if err != nil {
		return err
	}
	ingHTTP := ingest.New(srv.Metrics(), ingest.Config{QueueSize: batch, WindowSize: 1 << 16})
	srv.AttachIngestor(ingHTTP)
	body, err := json.Marshal(samples[:batch])
	if err != nil {
		return err
	}
	rHTTP := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rr := httptest.NewRecorder()
			srv.ServeHTTP(rr, httptest.NewRequest("POST", "/ingest", bytes.NewReader(body)))
			if rr.Code != 200 {
				b.Fatalf("/ingest: %d %s", rr.Code, rr.Body.String())
			}
			ingHTTP.Drain()
		}
	})
	rep.Rates = append(rep.Rates, ingestRateEntryOf("ingest_http", batch, rHTTP))

	// Overload: queue of 1024, never drained. Everything past the first
	// 1024 gate-passing samples must shed, explicitly and cheaply.
	ingShed := ingest.New(obs.NewRegistry(), ingest.Config{QueueSize: 1024})
	offered, accepted, shed := 0, 0, 0
	t0 := time.Now()
	for off := 0; off+batch <= len(samples) && offered < 16384; off = (off + batch) % (len(samples) - batch + 1) {
		res := ingShed.Ingest(samples[off : off+batch])
		offered += batch
		accepted += res.Accepted
		shed += res.Dropped
	}
	elapsed := time.Since(t0)
	rep.OverloadOffered = offered
	rep.OverloadAccepted = accepted
	rep.OverloadShed = shed
	rep.OverloadShedRate = float64(shed) / float64(offered)
	rep.ShedNsPerSample = float64(elapsed.Nanoseconds()) / float64(offered)

	// Refit cycles on a full window, with /predict hammered throughout:
	// the p99 a client sees while generations are retrained and swapped.
	ingRefit := ingest.New(obs.NewRegistry(), ingest.Config{
		QueueSize: 1 << 16,
		Refit:     ingest.RefitConfig{MinSamples: 100, Seed: seed},
	})
	for off := 0; off+batch <= len(samples); off += batch {
		ingRefit.Ingest(samples[off : off+batch])
		ingRefit.Drain()
	}
	sRefit, err := mapserver.NewWithChain(tm, nil)
	if err != nil {
		return err
	}
	sRefit.AttachIngestor(ingRefit)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var queries, failed atomic.Int64
	lat, lon := clean.Records[50].Latitude, clean.Records[50].Longitude
	url := fmt.Sprintf("/predict?lat=%f&lon=%f&speed=4&bearing=10", lat, lon)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rr := httptest.NewRecorder()
				sRefit.ServeHTTP(rr, httptest.NewRequest("GET", url, nil))
				queries.Add(1)
				if rr.Code != 200 {
					failed.Add(1)
				}
			}
		}()
	}
	const cycles = 3
	var refitTotal time.Duration
	for i := 0; i < cycles; i++ {
		c0 := time.Now()
		res, _ := ingRefit.RefitNow(sRefit)
		refitTotal += time.Since(c0)
		if res.Swapped {
			rep.RefitSwapped++
		} else if !res.Skipped {
			rep.RefitRejected++
		}
		rep.RefitWindow = res.Samples
	}
	close(stop)
	wg.Wait()
	rep.RefitCycles = cycles
	rep.RefitMeanMs = float64(refitTotal.Milliseconds()) / cycles
	rep.PredictP50Ms = sRefit.RouteLatencyQuantile("/predict", 0.5) * 1000
	rep.PredictP99Ms = sRefit.RouteLatencyQuantile("/predict", 0.99) * 1000
	rep.PredictQueries = queries.Load()
	rep.PredictFailed = failed.Load()

	// The swap alone: the critical section a predict query can race.
	chain := sRefit.Chain()
	if chain == nil {
		chain, err = lumos5g.NewFallbackChain(250)
		if err != nil {
			return err
		}
	}
	rSwap := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sRefit.SetChain(chain)
		}
	})
	rep.SwapNsPerOp = float64(rSwap.NsPerOp())

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}

	for _, r := range rep.Rates {
		fmt.Printf("%-16s %9.0f ns/op  %7.0f ns/sample  %11.0f samples/s  %5d allocs/op\n",
			r.Name, r.NsPerOp, r.NsPerSample, r.SamplesPerSec, r.AllocsPerOp)
	}
	fmt.Printf("overload: offered %d, accepted %d, shed %d (%.1f%%), %.0f ns/sample\n",
		rep.OverloadOffered, rep.OverloadAccepted, rep.OverloadShed,
		rep.OverloadShedRate*100, rep.ShedNsPerSample)
	fmt.Printf("refit: %d cycles on %d samples, mean %.0f ms, %d swapped, %d rejected; swap %.0f ns\n",
		rep.RefitCycles, rep.RefitWindow, rep.RefitMeanMs,
		rep.RefitSwapped, rep.RefitRejected, rep.SwapNsPerOp)
	fmt.Printf("/predict during refit: p50 %.3f ms, p99 %.3f ms over %d queries (%d failed)\n",
		rep.PredictP50Ms, rep.PredictP99Ms, rep.PredictQueries, rep.PredictFailed)
	fmt.Printf("wrote %s\n", path)

	if rep.PredictFailed > 0 {
		return fmt.Errorf("ingestbench: %d predict queries failed during refit", rep.PredictFailed)
	}
	return nil
}
