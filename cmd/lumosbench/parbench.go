package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"lumos5g"
	"lumos5g/internal/features"
	"lumos5g/internal/ml/gbdt"
	"lumos5g/internal/sim"
)

// The -parbench mode proves out the deterministic worker-pool layer: it
// times the three parallelised hot paths — campaign generation, GBDT
// training, batch prediction — serial versus parallel, verifies the
// outputs agree, and writes the numbers as machine-readable JSON. On a
// single-core machine the speedups hover around 1× (the report records
// num_cpu so that is auditable); correctness is asserted regardless.

// parBenchEntry is one serial-vs-parallel timing pair.
type parBenchEntry struct {
	Name               string  `json:"name"`
	Rows               int     `json:"rows"`
	SerialSeconds      float64 `json:"serial_seconds"`
	ParallelSeconds    float64 `json:"parallel_seconds"`
	Speedup            float64 `json:"speedup"`
	SerialRowsPerSec   float64 `json:"serial_rows_per_sec"`
	ParallelRowsPerSec float64 `json:"parallel_rows_per_sec"`
	// Identical reports that serial and parallel produced the same
	// result (bit-identical records / model predictions).
	Identical bool `json:"identical"`
}

// parBenchReport is the BENCH_parallel.json schema.
type parBenchReport struct {
	GeneratedAt string          `json:"generated_at"`
	NumCPU      int             `json:"num_cpu"`
	GoMaxProcs  int             `json:"go_max_procs"`
	Workers     int             `json:"workers"`
	Seed        uint64          `json:"seed"`
	Benchmarks  []parBenchEntry `json:"benchmarks"`
}

func entry(name string, rows int, serial, parallel time.Duration, identical bool) parBenchEntry {
	ss, ps := serial.Seconds(), parallel.Seconds()
	e := parBenchEntry{
		Name: name, Rows: rows,
		SerialSeconds: ss, ParallelSeconds: ps,
		Identical: identical,
	}
	if ps > 0 {
		e.Speedup = ss / ps
		e.ParallelRowsPerSec = float64(rows) / ps
	}
	if ss > 0 {
		e.SerialRowsPerSec = float64(rows) / ss
	}
	return e
}

// runParBench runs the three speedup benchmarks and writes the JSON
// report to path.
func runParBench(path string, workers int, seed uint64) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	rep := parBenchReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		NumCPU:      runtime.NumCPU(),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Workers:     workers,
		Seed:        seed,
	}

	// Generate: full three-area campaign, serial loop vs worker pipeline.
	cfg := lumos5g.SmallCampaign()
	cfg.Seed = seed
	start := time.Now()
	serialD := sim.RunCampaign(cfg)
	serialGen := time.Since(start)
	start = time.Now()
	parD := sim.RunCampaignParallel(cfg, nil, workers)
	parGen := time.Since(start)
	// Compare via CSV bytes: records carry NaN panel features on the
	// unsurveyed area, and NaN != NaN under struct equality.
	var sb, pb bytes.Buffer
	if err := serialD.WriteCSV(&sb); err != nil {
		return err
	}
	if err := parD.WriteCSV(&pb); err != nil {
		return err
	}
	genSame := bytes.Equal(sb.Bytes(), pb.Bytes())
	rep.Benchmarks = append(rep.Benchmarks,
		entry("generate", len(serialD.Records), serialGen, parGen, genSame))

	// Train: GBDT on the cleaned campaign's L+M feature matrix, one
	// worker vs the pool. Fitted models must predict identically.
	clean, _ := serialD.QualityFilter()
	mat := features.Build(clean, features.GroupLM)
	gcfg := gbdt.Config{Estimators: 60, MaxDepth: 6, Seed: seed}
	gcfg.Workers = 1
	serialM := gbdt.New(gcfg)
	start = time.Now()
	if err := serialM.Fit(mat.X, mat.Y); err != nil {
		return fmt.Errorf("parbench: serial fit: %w", err)
	}
	serialFit := time.Since(start)
	gcfg.Workers = workers
	parM := gbdt.New(gcfg)
	start = time.Now()
	if err := parM.Fit(mat.X, mat.Y); err != nil {
		return fmt.Errorf("parbench: parallel fit: %w", err)
	}
	parFit := time.Since(start)
	fitSame := true
	for i := 0; fitSame && i < len(mat.X); i++ {
		fitSame = serialM.Predict(mat.X[i]) == parM.Predict(mat.X[i])
	}
	rep.Benchmarks = append(rep.Benchmarks,
		entry("train", len(mat.X), serialFit, parFit, fitSame))

	// Predict: per-row Predict loop vs PredictBatch on the same model.
	start = time.Now()
	serialPred := make([]float64, len(mat.X))
	for i, x := range mat.X {
		serialPred[i] = parM.Predict(x)
	}
	serialBatch := time.Since(start)
	start = time.Now()
	parPred := parM.PredictBatch(mat.X)
	parBatch := time.Since(start)
	predSame := len(serialPred) == len(parPred)
	for i := 0; predSame && i < len(serialPred); i++ {
		predSame = serialPred[i] == parPred[i]
	}
	rep.Benchmarks = append(rep.Benchmarks,
		entry("predict", len(mat.X), serialBatch, parBatch, predSame))

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	for _, b := range rep.Benchmarks {
		fmt.Printf("%-9s %7d rows  serial %6.2fs  parallel %6.2fs  speedup %.2fx  identical=%t\n",
			b.Name, b.Rows, b.SerialSeconds, b.ParallelSeconds, b.Speedup, b.Identical)
	}
	fmt.Printf("wrote %s (workers=%d, cpus=%d)\n", path, workers, rep.NumCPU)
	for _, b := range rep.Benchmarks {
		if !b.Identical {
			return fmt.Errorf("parbench: %s diverged between serial and parallel", b.Name)
		}
	}
	return nil
}
