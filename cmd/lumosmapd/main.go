// Command lumosmapd serves a 5G throughput map and its companion ML
// model over HTTP — the paper's Fig 4 scenario: apps fetch the map for
// their surroundings, download the model, and query predictions.
//
// Usage:
//
//	lumosmapd -in airport.csv -listen :8457
//	lumosmapd -area Airport -passes 6 -listen :8457   # simulate instead
//	lumosmapd -area Airport -nomodel                  # degraded: map only
//	lumosmapd -in airport.csv -model chain.l5g -watch 5s
//
// Routes: /healthz, /metrics, /map.svg, /cells.json, /model, /predict?lat=..&lon=..&speed=..&bearing=..
// With -ingest, POST /ingest accepts batched per-second samples from UEs
// in the field; a gated refit loop periodically retrains the chain on
// the accepted window and hot-swaps it only when a holdout check shows
// no regression (-refit-interval, -refit-gate).
//
// The model is a fallback chain (L+M+C → L+M → L → harmonic mean): a
// query missing kinematics or history is demoted to the best tier its
// features support instead of being rejected. With -model the chain is
// loaded from a saved artifact, and -watch hot-reloads it whenever the
// file changes — corrupt artifacts are rejected and the live model keeps
// serving.
//
// The daemon shuts down gracefully on SIGINT/SIGTERM, draining in-flight
// requests for -grace before exiting.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // profiling endpoints, served only with -pprof
	"os"
	"os/signal"
	"syscall"
	"time"

	"lumos5g"
	"lumos5g/internal/ingest"
	"lumos5g/internal/mapserver"
)

func main() {
	in := flag.String("in", "", "dataset CSV (mutually exclusive with -area)")
	areaName := flag.String("area", "", "simulate this area instead of loading a CSV")
	passes := flag.Int("passes", 6, "walking passes when simulating")
	seed := flag.Uint64("seed", 1, "campaign/model seed")
	listen := flag.String("listen", "127.0.0.1:8457", "listen address")
	minSamples := flag.Int("min", 3, "minimum samples per map cell")
	noModel := flag.Bool("nomodel", false, "serve the map without a predictor (degraded mode)")
	modelPath := flag.String("model", "", "load the model from a saved artifact instead of training")
	watch := flag.Duration("watch", 0, "poll -model for changes and hot-reload (0 disables)")
	reqTimeout := flag.Duration("timeout", 10*time.Second, "per-request handler timeout")
	maxInFlight := flag.Int("max-inflight", 0, "in-flight request bound; excess is shed with 503 + Retry-After (0 = unbounded)")
	metrics := flag.Bool("metrics", true, "serve Prometheus text metrics on /metrics")
	logRequests := flag.Bool("log-requests", false, "write one JSON access-log line per request to stderr")
	grace := flag.Duration("grace", 5*time.Second, "shutdown drain period")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. 127.0.0.1:6060; off by default)")
	ingestOn := flag.Bool("ingest", false, "accept streamed samples on POST /ingest and refit the model on them")
	ingestQueue := flag.Int("ingest-queue", 4096, "bounded ingest queue size; full queues shed with 429 + Retry-After")
	refitInterval := flag.Duration("refit-interval", 30*time.Second, "how often the refit loop retrains on the ingest window")
	refitGate := flag.Float64("refit-gate", 0.10, "holdout gate: reject a candidate whose MAE regresses past the live model by this fraction")
	refitMin := flag.Int("refit-min", 200, "window samples required before a refit fires")
	refitArtifact := flag.String("refit-artifact", "", "promote accepted refit generations to this artifact path (empty = in-memory only)")
	refitWorkers := flag.Int("refit-workers", 0, "trainer parallelism for refits; 0 = one worker per CPU (fits are byte-identical for any count)")
	ingestCellCap := flag.Int("ingest-cell-cap", 0, "max window samples per grid cell, evicting oldest-in-cell — keeps a parked UE from dominating refits (0 = unlimited)")
	flag.Parse()

	if *watch > 0 && *modelPath == "" {
		fmt.Fprintln(os.Stderr, "lumosmapd: -watch requires -model")
		os.Exit(2)
	}

	var d *lumos5g.Dataset
	switch {
	case *in != "":
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		d, err = lumos5g.ReadCSV(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	case *areaName != "":
		area, err := lumos5g.AreaByName(*areaName)
		if err != nil {
			log.Fatal(err)
		}
		cfg := lumos5g.CampaignConfig{Seed: *seed, WalkPasses: *passes, BackgroundUEProb: 0.12}
		raw := lumos5g.GenerateArea(area, cfg)
		d, _ = lumos5g.CleanDataset(raw)
	default:
		fmt.Fprintln(os.Stderr, "lumosmapd: one of -in or -area is required")
		os.Exit(2)
	}

	tm := lumos5g.BuildThroughputMap(d, *minSamples)
	var chain *lumos5g.FallbackChain
	switch {
	case *noModel:
	case *modelPath != "":
		// A missing file is fine under -watch: the watcher installs the
		// model once the artifact appears.
		c, err := lumos5g.LoadAnyModelFile(*modelPath, lumos5g.HarmonicMeanThroughput(d))
		switch {
		case err == nil:
			chain = c
		case *watch > 0 && os.IsNotExist(err):
			log.Printf("model %s not there yet; waiting for the watcher", *modelPath)
		default:
			log.Fatal(err)
		}
	default:
		var err error
		chain, err = lumos5g.TrainCalibratedFallbackChain(d, lumos5g.DefaultFallbackGroups, lumos5g.ModelGDBT, lumos5g.Scale{Seed: *seed})
		if err != nil {
			log.Fatal(err)
		}
	}
	opts := []mapserver.Option{
		mapserver.WithRequestTimeout(*reqTimeout),
		mapserver.WithMetricsRoute(*metrics),
		mapserver.WithMaxInFlight(*maxInFlight),
	}
	if *logRequests {
		opts = append(opts, mapserver.WithRequestLog(os.Stderr))
	}
	srv, err := mapserver.NewWithChain(tm, chain, opts...)
	if err != nil {
		log.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// The profiler listens on its own (normally loopback-only) address so
	// the serving port never exposes /debug/pprof.
	if *pprofAddr != "" {
		go func() {
			log.Printf("pprof on http://%s/debug/pprof/", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("pprof server: %v", err)
			}
		}()
	}

	if *watch > 0 {
		stopWatch := srv.StartModelWatch(*modelPath, *watch, func(err error) {
			if err != nil {
				log.Printf("model reload rejected: %v", err)
			} else {
				log.Printf("model reloaded from %s: %s", *modelPath, srv.Chain())
			}
		})
		// Join the watcher goroutine on shutdown so the drain leaves
		// nothing running behind the process's back.
		defer stopWatch()
	}

	if *ingestOn {
		ing := ingest.New(srv.Metrics(), ingest.Config{
			QueueSize: *ingestQueue,
			CellCap:   *ingestCellCap,
			Refit: ingest.RefitConfig{
				Interval:     *refitInterval,
				GateFrac:     *refitGate,
				MinSamples:   *refitMin,
				Seed:         *seed,
				ArtifactPath: *refitArtifact,
				Workers:      *refitWorkers,
			},
		})
		srv.AttachIngestor(ing)
		stopRefit := ing.Start(srv, func(res ingest.RefitResult, err error) {
			if res.Swapped {
				log.Printf("refit accepted on %d samples (live MAE %.2f -> candidate %.2f); model hot-swapped: %s",
					res.Samples, res.LiveMAE, res.CandMAE, srv.Chain())
			} else {
				log.Printf("refit rejected (%s), old model kept: %v", res.Reason, err)
			}
		})
		defer stopRefit()
		log.Printf("ingest enabled: POST /ingest (queue %d, refit every %v, gate %.0f%%)",
			*ingestQueue, *refitInterval, *refitGate*100)
	}

	if chain != nil {
		log.Printf("serving %d map cells, model %s on http://%s", len(tm.Cells), chain, *listen)
	} else {
		log.Printf("serving %d map cells DEGRADED (no model) on http://%s", len(tm.Cells), *listen)
	}
	if err := mapserver.ListenAndServe(ctx, *listen, srv, *grace); err != nil {
		log.Fatal(err)
	}
	log.Printf("shut down cleanly")
}
