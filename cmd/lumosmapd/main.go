// Command lumosmapd serves a 5G throughput map and its companion ML
// model over HTTP — the paper's Fig 4 scenario: apps fetch the map for
// their surroundings, download the model, and query predictions.
//
// Usage:
//
//	lumosmapd -in airport.csv -listen :8457
//	lumosmapd -area Airport -passes 6 -listen :8457   # simulate instead
//	lumosmapd -area Airport -nomodel                  # degraded: map only
//
// Routes: /healthz, /map.svg, /cells.json, /model, /predict?lat=..&lon=..&speed=..&bearing=..
//
// The daemon shuts down gracefully on SIGINT/SIGTERM, draining in-flight
// requests for -grace before exiting.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"lumos5g"
	"lumos5g/internal/mapserver"
)

func main() {
	in := flag.String("in", "", "dataset CSV (mutually exclusive with -area)")
	areaName := flag.String("area", "", "simulate this area instead of loading a CSV")
	passes := flag.Int("passes", 6, "walking passes when simulating")
	seed := flag.Uint64("seed", 1, "campaign/model seed")
	listen := flag.String("listen", "127.0.0.1:8457", "listen address")
	minSamples := flag.Int("min", 3, "minimum samples per map cell")
	noModel := flag.Bool("nomodel", false, "serve the map without training a predictor (degraded mode)")
	reqTimeout := flag.Duration("timeout", 10*time.Second, "per-request handler timeout")
	grace := flag.Duration("grace", 5*time.Second, "shutdown drain period")
	flag.Parse()

	var d *lumos5g.Dataset
	switch {
	case *in != "":
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		d, err = lumos5g.ReadCSV(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	case *areaName != "":
		area, err := lumos5g.AreaByName(*areaName)
		if err != nil {
			log.Fatal(err)
		}
		cfg := lumos5g.CampaignConfig{Seed: *seed, WalkPasses: *passes, BackgroundUEProb: 0.12}
		raw := lumos5g.GenerateArea(area, cfg)
		d, _ = lumos5g.CleanDataset(raw)
	default:
		fmt.Fprintln(os.Stderr, "lumosmapd: one of -in or -area is required")
		os.Exit(2)
	}

	tm := lumos5g.BuildThroughputMap(d, *minSamples)
	var pred *lumos5g.Predictor
	if !*noModel {
		var err error
		pred, err = lumos5g.Train(d, lumos5g.GroupLM, lumos5g.ModelGDBT, lumos5g.Scale{Seed: *seed})
		if err != nil {
			log.Fatal(err)
		}
	}
	srv, err := mapserver.New(tm, pred, mapserver.WithRequestTimeout(*reqTimeout))
	if err != nil {
		log.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if pred != nil {
		log.Printf("serving %d map cells and an L+M GDBT model on http://%s", len(tm.Cells), *listen)
	} else {
		log.Printf("serving %d map cells DEGRADED (no model) on http://%s", len(tm.Cells), *listen)
	}
	if err := mapserver.ListenAndServe(ctx, *listen, srv, *grace); err != nil {
		log.Fatal(err)
	}
	log.Printf("shut down cleanly")
}
