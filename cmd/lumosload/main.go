// Command lumosload replays a generated-city UE fleet against a
// running lumosmapd or lumosfleet instance and reports per-route
// latency against SLOs — the serving side of the paper's Fig 4
// deployment under load.
//
// A procedural city (internal/cityscape) provides the street grid and
// routes; -ues concurrent simulated walkers issue GET /predict and
// POST /predict/batch from their live positions and replay recorded
// campaign seconds on POST /ingest. With -qps the fleet is paced open
// loop (warmup, linear ramp, measured steady window); without it each
// UE runs closed loop, back to back.
//
// Usage:
//
//	lumosload -url http://127.0.0.1:8460 -ues 1000 -qps 2000 -duration 30s
//	lumosload -url http://127.0.0.1:8457 -slo "/predict:50:250,/predict/batch:0:500"
//	lumosload -selftest        # CI: in-process fleet, small swarm
//	lumosload -local -ues 1000 -qps 1500   # in-process fleet, full swarm
//
// Results are written to -out (default BENCH_load.json) using the
// repo's lumosbench JSON conventions. Exit status is 1 when any SLO
// fails, 0 otherwise.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"lumos5g/internal/cityscape"
	"lumos5g/internal/dataset"
	"lumos5g/internal/env"
	"lumos5g/internal/load"
	"lumos5g/internal/sim"
)

// parseSLOs parses "-slo /predict:50:250,/predict/batch:0:500" —
// route:p50ms:p99ms triples, 0 skipping a bound.
func parseSLOs(s string) (map[string]load.SLO, error) {
	out := map[string]load.SLO{}
	if s == "" {
		return out, nil
	}
	for _, part := range strings.Split(s, ",") {
		fields := strings.Split(strings.TrimSpace(part), ":")
		if len(fields) != 3 {
			return nil, fmt.Errorf("bad SLO %q, want route:p50ms:p99ms", part)
		}
		p50, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("bad SLO p50 in %q: %v", part, err)
		}
		p99, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, fmt.Errorf("bad SLO p99 in %q: %v", part, err)
		}
		out[fields[0]] = load.SLO{P50Ms: p50, P99Ms: p99}
	}
	return out, nil
}

func main() {
	urlFlag := flag.String("url", "", "base URL of the server under test (lumosmapd or lumosfleet router)")
	ues := flag.Int("ues", 1000, "concurrent simulated UEs")
	qps := flag.Float64("qps", 0, "open-loop target QPS across the fleet (0 = closed loop)")
	duration := flag.Duration("duration", 10*time.Second, "measured steady window")
	warmup := flag.Duration("warmup", 0, "warmup before the ramp (default duration/5)")
	ramp := flag.Duration("ramp", 0, "linear ramp to target QPS (default duration/5; open loop only)")
	mixPredict := flag.Float64("mix-predict", 0.70, "traffic share for GET /predict")
	mixBatch := flag.Float64("mix-batch", 0.20, "traffic share for POST /predict/batch")
	mixIngest := flag.Float64("mix-ingest", 0.10, "traffic share for POST /ingest")
	batch := flag.Int("batch", 32, "queries per /predict/batch request")
	ingestBatch := flag.Int("ingest-batch", 64, "samples per POST /ingest request")
	citySeed := flag.Uint64("city-seed", 1, "procedural city seed (same seed = byte-identical city)")
	cityX := flag.Int("city-blocks-x", 6, "city grid width in blocks")
	cityY := flag.Int("city-blocks-y", 4, "city grid height in blocks")
	replayUEs := flag.Int("replay-ues", 16, "campaign UEs simulated up front to source POST /ingest bodies (0 disables ingest)")
	sloFlag := flag.String("slo", "", "per-route SLOs as route:p50ms:p99ms, comma-separated; 0 skips a bound")
	out := flag.String("out", "BENCH_load.json", "report path")
	seed := flag.Uint64("seed", 1, "fleet behavior seed")
	selftest := flag.Bool("selftest", false, "CI mode: start an in-process fleet and run a small closed-loop swarm against it")
	local := flag.Bool("local", false, "start an in-process fleet and drive it with the full configured swarm (no -url needed)")
	shards := flag.Int("shards", 0, "shards for the -local/-selftest fleet (0 = default)")
	replicas := flag.Int("replicas", 0, "replicas per shard for the -local/-selftest fleet (0 = default)")
	flag.Parse()

	slos, err := parseSLOs(*sloFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lumosload:", err)
		os.Exit(2)
	}

	city := cityscape.Generate(cityscape.Config{Seed: *citySeed, BlocksX: *cityX, BlocksY: *cityY})
	cfg := load.Config{
		BaseURL:     *urlFlag,
		UEs:         *ues,
		TargetQPS:   *qps,
		Duration:    *duration,
		Warmup:      *warmup,
		Ramp:        *ramp,
		MixPredict:  *mixPredict,
		MixBatch:    *mixBatch,
		MixIngest:   *mixIngest,
		BatchSize:   *batch,
		IngestBatch: *ingestBatch,
		Seed:        *seed,
		SLOs:        slos,
	}

	var replay *dataset.Dataset
	switch {
	case *local:
		lf, err := load.StartLocalFleet(city, load.LocalConfig{Seed: *seed, Shards: *shards, Replicas: *replicas})
		if err != nil {
			fmt.Fprintln(os.Stderr, "lumosload: local fleet:", err)
			os.Exit(1)
		}
		defer lf.Close()
		replay = lf.Campaign
		cfg.BaseURL = lf.URL
		fmt.Printf("local fleet on %s\n", cfg.BaseURL)
	case *selftest:
		// Small everything: a real fleet, a real swarm, seconds not
		// minutes — just enough to prove the whole path end to end.
		small := cityscape.Generate(cityscape.Config{Seed: *citySeed, BlocksX: 3, BlocksY: 2, Routes: 4, RouteBlocks: 3})
		lf, err := load.StartLocalFleet(small, load.LocalConfig{Seed: *seed, Shards: *shards, Replicas: *replicas})
		if err != nil {
			fmt.Fprintln(os.Stderr, "lumosload: selftest fleet:", err)
			os.Exit(1)
		}
		defer lf.Close()
		city = small
		replay = lf.Campaign
		cfg.BaseURL = lf.URL
		cfg.UEs = 40
		cfg.TargetQPS = 0
		cfg.Duration = 1500 * time.Millisecond
		cfg.Warmup = 300 * time.Millisecond
		cfg.SLOs = map[string]load.SLO{load.RoutePredict: {P99Ms: 10000}}
		fmt.Printf("selftest fleet on %s\n", cfg.BaseURL)
	default:
		if cfg.BaseURL == "" {
			fmt.Fprintln(os.Stderr, "lumosload: -url is required (or use -selftest / -local)")
			os.Exit(2)
		}
		if *replayUEs > 0 && cfg.MixIngest > 0 {
			sc := city.Mixed(*replayUEs, *seed)
			replay = sim.RunCampaignParallel(sc.Sim, []*env.Area{sc.Area}, 0)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fmt.Printf("driving %d UEs over %s (%d towers) at %s\n", cfg.UEs, city.Config.Name, len(city.Towers), cfg.BaseURL)
	rep, err := load.Run(ctx, cfg, city, replay)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lumosload:", err)
		os.Exit(1)
	}
	if err := rep.WriteFile(*out); err != nil {
		fmt.Fprintln(os.Stderr, "lumosload: write report:", err)
		os.Exit(1)
	}
	fmt.Print(rep.Summary())
	fmt.Printf("report written to %s\n", *out)
	if rep.SLOVerdict == "fail" {
		os.Exit(1)
	}
}
