// Command lumos5g is the command-line interface to the library: it
// generates measurement campaigns, inspects datasets, trains and
// evaluates throughput predictors, and renders 5G throughput maps.
//
// Usage:
//
//	lumos5g generate -area Airport -passes 8 -seed 1 -out airport.csv
//	lumos5g summary  -in airport.csv
//	lumos5g eval     -in airport.csv -group L+M -model GDBT
//	lumos5g map      -in airport.csv -min 3
//	lumos5g congestion -ues 4
//	lumos5g measure  -rate 200 -samples 30 -faults
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"lumos5g"
	"lumos5g/internal/netem"
	"lumos5g/internal/rng"
	"lumos5g/internal/sim"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "generate":
		err = cmdGenerate(os.Args[2:])
	case "summary":
		err = cmdSummary(os.Args[2:])
	case "eval":
		err = cmdEval(os.Args[2:])
	case "map":
		err = cmdMap(os.Args[2:])
	case "congestion":
		err = cmdCongestion(os.Args[2:])
	case "measure":
		err = cmdMeasure(os.Args[2:])
	case "train":
		err = cmdTrain(os.Args[2:])
	case "predict":
		err = cmdPredict(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "lumos5g: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "lumos5g:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `lumos5g <command> [flags]

commands:
  generate    simulate a measurement campaign and write CSV
  summary     print Table 3-style statistics for a dataset
  eval        train/evaluate a model on a feature group (70/30 split)
  map         render the 2 m-grid throughput map (Fig 6)
  train       train a GDBT predictor on a dataset and save it (gob)
  predict     load a saved predictor and score a dataset CSV
  congestion  run the 4-UE congestion experiment (Fig 21)
  measure     run a live shaped-TCP measurement with optional fault injection`)
}

func cmdGenerate(args []string) error {
	fs := flag.NewFlagSet("generate", flag.ExitOnError)
	areaName := fs.String("area", "", "Airport, Intersection, Loop, or empty for all")
	passes := fs.Int("passes", 8, "walking passes per trajectory")
	drives := fs.Int("drives", 8, "driving passes per Loop trajectory")
	seed := fs.Uint64("seed", 1, "campaign seed")
	out := fs.String("out", "", "output CSV path (default stdout)")
	clean := fs.Bool("clean", true, "apply the §3.1 quality filter")
	checkpoint := fs.String("checkpoint", "", "checkpoint path for a resumable run (requires -out)")
	workers := fs.Int("workers", 0, "simulation worker goroutines (0 = one per CPU); output is identical for every worker count")
	fs.Parse(args)

	cfg := lumos5g.CampaignConfig{
		Seed: *seed, WalkPasses: *passes, DrivePasses: *drives,
		StationarySessions: 4, BackgroundUEProb: 0.12,
	}
	if *checkpoint != "" {
		return generateResumable(cfg, *areaName, *out, *checkpoint, *clean, *workers)
	}
	var areas []*lumos5g.Area
	if *areaName != "" {
		a, err := lumos5g.AreaByName(*areaName)
		if err != nil {
			return err
		}
		areas = []*lumos5g.Area{a}
	}
	d := lumos5g.GenerateCampaignParallel(cfg, areas, *workers)
	if *clean {
		var dropped int
		d, dropped = lumos5g.CleanDataset(d)
		fmt.Fprintf(os.Stderr, "quality filter dropped %d records\n", dropped)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := lumos5g.WriteCSV(d, w); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %d records\n", d.Len())
	return nil
}

// generateResumable runs a checkpointed campaign that survives SIGTERM:
// interrupting it leaves a checkpoint behind, and re-running the same
// command resumes where it stopped, producing a byte-identical CSV.
func generateResumable(cfg lumos5g.CampaignConfig, areaName, out, checkpoint string, clean bool, workers int) error {
	if out == "" {
		return fmt.Errorf("generate: -checkpoint requires -out")
	}
	var areas []*lumos5g.Area
	if areaName != "" {
		a, err := lumos5g.AreaByName(areaName)
		if err != nil {
			return err
		}
		areas = []*lumos5g.Area{a}
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	res, err := lumos5g.GenerateResumable(ctx, cfg, areas, out, checkpoint, lumos5g.ResumeOptions{
		Clean:   clean,
		Workers: workers,
		OnShard: func(done, total int) {
			fmt.Fprintf(os.Stderr, "\rshard %d/%d", done, total)
		},
	})
	fmt.Fprintln(os.Stderr)
	if err != nil {
		return err
	}
	if res.Resumed {
		fmt.Fprintln(os.Stderr, "resumed from checkpoint", checkpoint)
	}
	if clean {
		fmt.Fprintf(os.Stderr, "quality filter dropped %d records\n", res.Dropped)
	}
	if !res.Completed {
		fmt.Fprintf(os.Stderr, "interrupted after %d records; rerun to resume from %s\n", res.Rows, checkpoint)
		return nil
	}
	fmt.Fprintf(os.Stderr, "wrote %d records\n", res.Rows)
	return nil
}

func loadCSV(path string) (*lumos5g.Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return lumos5g.ReadCSV(f)
}

func cmdSummary(args []string) error {
	fs := flag.NewFlagSet("summary", flag.ExitOnError)
	in := fs.String("in", "", "input CSV path")
	lenient := fs.Bool("lenient", false, "quarantine malformed rows instead of failing")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("summary: -in required")
	}
	var d *lumos5g.Dataset
	var err error
	if *lenient {
		f, ferr := os.Open(*in)
		if ferr != nil {
			return ferr
		}
		defer f.Close()
		var rep *lumos5g.LoadReport
		d, rep, err = lumos5g.ReadCSVLenient(f)
		if err != nil {
			return err
		}
		if rep.Quarantined > 0 {
			fmt.Fprintf(os.Stderr, "quarantined %d malformed rows\n", rep.Quarantined)
			for _, re := range rep.Errors {
				fmt.Fprintln(os.Stderr, " ", re)
			}
		}
	} else {
		d, err = loadCSV(*in)
		if err != nil {
			return err
		}
	}
	s := d.Summary()
	fmt.Printf("data points : %d per-second samples\n", s.DataPoints)
	fmt.Printf("walked      : %.1f km\n", s.WalkedKm)
	fmt.Printf("driven      : %.1f km\n", s.DrivenKm)
	fmt.Printf("downloaded  : %.1f GB\n", s.DownloadGB)
	fmt.Printf("5G attach   : %.1f%%\n", 100*s.NRFraction)
	fmt.Printf("handoffs    : %.2f per 100 samples\n", s.HandoffRate)
	for area, n := range s.Areas {
		fmt.Printf("area %-12s %d samples\n", area, n)
	}
	return nil
}

func cmdEval(args []string) error {
	fs := flag.NewFlagSet("eval", flag.ExitOnError)
	in := fs.String("in", "", "input CSV path")
	groupName := fs.String("group", "L+M", "feature group: L, L+M, T+M, L+M+C, T+M+C")
	modelName := fs.String("model", "GDBT", "model: KNN, RF, OK, HM, GDBT, Seq2Seq")
	seed := fs.Uint64("seed", 1, "split/model seed")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("eval: -in required")
	}
	d, err := loadCSV(*in)
	if err != nil {
		return err
	}
	g, err := lumos5g.ParseFeatureGroup(*groupName)
	if err != nil {
		return err
	}
	m, err := lumos5g.ParseModel(*modelName)
	if err != nil {
		return err
	}
	res := lumos5g.Evaluate(d, g, m, lumos5g.Scale{Seed: *seed})
	if res.Err != nil {
		return res.Err
	}
	fmt.Printf("%s on %s over %d test samples:\n", m, g, res.NTest)
	fmt.Printf("  MAE  %.1f Mbps\n  RMSE %.1f Mbps\n", res.MAE, res.RMSE)
	fmt.Printf("  weighted-avg F1 %.3f\n  recall(low)     %.3f\n", res.WeightedF1, res.RecallLow)
	return nil
}

func cmdMap(args []string) error {
	fs := flag.NewFlagSet("map", flag.ExitOnError)
	in := fs.String("in", "", "input CSV path")
	min := fs.Int("min", 3, "minimum samples per cell")
	svgOut := fs.String("svg", "", "also write an SVG heatmap to this path")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("map: -in required")
	}
	d, err := loadCSV(*in)
	if err != nil {
		return err
	}
	tm := lumos5g.BuildThroughputMap(d, *min)
	fmt.Println(tm)
	fmt.Println("legend: '.' <60 Mbps  ':' <300  'o' <700  'O' <1000  '#' >=1000")
	fmt.Print(tm.Render())
	fmt.Printf("cells with CV>=50%%: %.0f%%\n", 100*tm.CVExceedingFraction(0.5))
	if *svgOut != "" {
		if err := os.WriteFile(*svgOut, []byte(tm.RenderSVG(6)), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote SVG heatmap to %s\n", *svgOut)
	}
	return nil
}

func cmdCongestion(args []string) error {
	fs := flag.NewFlagSet("congestion", flag.ExitOnError)
	ues := fs.Int("ues", 4, "number of UEs")
	seed := fs.Uint64("seed", 1, "seed")
	fs.Parse(args)
	res := sim.RunCongestionExperiment(*seed, *ues, 60, (*ues)*60)
	for u, series := range res.Series {
		var active []float64
		for t, v := range series {
			if t >= res.Starts[u] {
				active = append(active, v)
			}
		}
		var sum float64
		for _, v := range active {
			sum += v
		}
		fmt.Printf("UE%d: start t=%3ds, mean %.0f Mbps over %d s\n",
			u+1, res.Starts[u], sum/float64(len(active)), len(active))
	}
	return nil
}

func cmdMeasure(args []string) error {
	fs := flag.NewFlagSet("measure", flag.ExitOnError)
	rate := fs.Float64("rate", 200, "shaped link rate in Mbps")
	conns := fs.Int("conns", 8, "parallel TCP connections")
	samples := fs.Int("samples", 30, "per-interval samples to collect")
	interval := fs.Duration("interval", time.Second, "sample interval")
	seed := fs.Uint64("seed", 1, "fault-plan and backoff-jitter seed")
	faults := fs.Bool("faults", false, "inject mmWave faults (reset, handoff stall, dead-zone blackout)")
	resets := fs.Int("resets", 1, "connection resets to schedule (with -faults)")
	stalls := fs.Int("stalls", 1, "handoff stalls to schedule (with -faults)")
	blackouts := fs.Int("blackouts", 1, "dead-zone blackouts to schedule (with -faults)")
	fs.Parse(args)

	sh := netem.NewShaper(*rate * 1e6)
	var plan *netem.FaultPlan
	if *faults {
		window := time.Duration(*samples) * *interval
		plan = netem.GenerateFaultPlan(rng.New(*seed), window, netem.FaultConfig{
			Resets: *resets, Stalls: *stalls, Blackouts: *blackouts,
			StallMean: 2 * *interval, BlackoutMean: 3 * *interval,
		})
		for _, ev := range plan.Events() {
			fmt.Fprintf(os.Stderr, "scheduled %-9s at %6.1fs dur %.1fs\n",
				ev.Kind, ev.At.Seconds(), ev.Duration.Seconds())
		}
	}
	srv, err := netem.NewServerWithFaults(sh, plan)
	if err != nil {
		return err
	}
	defer srv.Close()

	// Ctrl-C ends the run early; the partial-result contract still
	// yields every sample collected so far.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	c := &netem.Client{Connections: *conns, SampleInterval: *interval, Seed: *seed}
	rep, err := c.MeasureFull(ctx, srv.Addr(), *samples)
	if rep == nil {
		return err
	}
	for i, v := range rep.Samples {
		fmt.Printf("t=%3d  %8.1f Mbps\n", i, v)
	}
	if rep.Partial {
		fmt.Printf("interrupted after %d/%d samples (%v)\n", len(rep.Samples), *samples, err)
	}
	fmt.Printf("zero-throughput samples: %d\n", rep.Zeros)
	fmt.Printf("reconnect attempts: %d (dial errors: %d)\n", rep.Retries, rep.DialErrors)
	for i, st := range rep.Conns {
		if len(st.Errors) > 0 {
			fmt.Printf("conn %d: dials %d stalls %d read-errors %d [%s]\n",
				i, st.Dials, st.Stalls, st.ReadErrors, strings.Join(st.Errors, "; "))
		}
	}
	if plan != nil {
		for _, ev := range plan.Fired() {
			fmt.Printf("fired %-9s at %6.1fs dur %.1fs\n", ev.Kind, ev.At.Seconds(), ev.Duration.Seconds())
		}
	}
	return nil
}

func cmdTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	in := fs.String("in", "", "training CSV path")
	groupName := fs.String("group", "L+M", "feature group")
	out := fs.String("out", "model.gob", "output model path")
	seed := fs.Uint64("seed", 1, "model seed")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("train: -in required")
	}
	d, err := loadCSV(*in)
	if err != nil {
		return err
	}
	g, err := lumos5g.ParseFeatureGroup(*groupName)
	if err != nil {
		return err
	}
	pred, err := lumos5g.Train(d, g, lumos5g.ModelGDBT, lumos5g.Scale{Seed: *seed})
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := pred.Save(f); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "trained GDBT %s on %d records -> %s\n", g, d.Len(), *out)
	return nil
}

func cmdPredict(args []string) error {
	fs := flag.NewFlagSet("predict", flag.ExitOnError)
	model := fs.String("model", "model.gob", "saved predictor path")
	in := fs.String("in", "", "CSV of records to score")
	limit := fs.Int("n", 10, "rows to print (0 = summary only)")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("predict: -in required")
	}
	f, err := os.Open(*model)
	if err != nil {
		return err
	}
	pred, err := lumos5g.LoadPredictor(f)
	f.Close()
	if err != nil {
		return err
	}
	d, err := loadCSV(*in)
	if err != nil {
		return err
	}
	est, idx := pred.PredictDataset(d)
	var mae float64
	for i := range est {
		diff := est[i] - d.Records[idx[i]].ThroughputMbps
		if diff < 0 {
			diff = -diff
		}
		mae += diff
		if i < *limit {
			r := d.Records[idx[i]]
			fmt.Printf("(%.5f, %.5f) -> predicted %.0f Mbps (%s), observed %.0f\n",
				r.Latitude, r.Longitude, est[i], lumos5g.ClassOf(est[i]), r.ThroughputMbps)
		}
	}
	if len(est) > 0 {
		fmt.Printf("scored %d records with %s %s: MAE %.1f Mbps\n",
			len(est), pred.Model(), pred.Group(), mae/float64(len(est)))
	}
	return nil
}
