// Package lumos5g is the public API of this repository: a Go
// reproduction of "Lumos5G: Mapping and Predicting Commercial mmWave 5G
// Throughput" (Narayanan et al., IMC 2020).
//
// The package exposes four capabilities:
//
//  1. Campaign generation — a mechanistic mmWave radio + mobility
//     simulator regenerates a Lumos5G-style per-second measurement
//     dataset over the paper's three areas (GenerateCampaign,
//     GenerateArea).
//  2. The Lumos5G ML framework — composable feature groups (L, M, T, C
//     and their combinations, Table 6) paired with GDBT and Seq2Seq
//     models plus the 3G/4G-era baselines (KNN, RF, Ordinary Kriging,
//     Harmonic Mean), evaluated exactly as in §6 (Evaluate, Train).
//  3. 5G throughput maps — the Fig 3c/6 artifact (BuildThroughputMap).
//  4. Transferability analysis — §6.2 (Transferability).
//
// A quickstart lives in examples/quickstart; the experiment harness that
// regenerates every table and figure of the paper is cmd/lumosbench.
package lumos5g

import (
	"context"
	"fmt"
	"io"
	"strings"

	"lumos5g/internal/core"
	"lumos5g/internal/dataset"
	"lumos5g/internal/env"
	"lumos5g/internal/features"
	"lumos5g/internal/ml"
	"lumos5g/internal/radio"
	"lumos5g/internal/sim"
)

// Re-exported data types. These aliases make the internal implementation
// types part of the public API surface.
type (
	// Record is one per-second measurement sample (Table 1 schema).
	Record = dataset.Record
	// Dataset is an ordered collection of records.
	Dataset = dataset.Dataset
	// Stats summarises a campaign (Table 3).
	Stats = dataset.Stats
	// FeatureGroup is a Table 6 feature group or combination.
	FeatureGroup = features.Group
	// Model selects a predictor family.
	Model = core.ModelKind
	// Scale bundles hyper-parameters (see EXPERIMENTS.md for the mapping
	// to the paper's settings).
	Scale = core.Scale
	// Result is one model × feature-group evaluation outcome.
	Result = core.Result
	// ThroughputMap is the per-grid 5G throughput map (Fig 3c).
	ThroughputMap = core.ThroughputMap
	// TransferResult is the §6.2 cross-panel generalisation outcome.
	TransferResult = core.TransferResult
	// CampaignConfig controls dataset generation.
	CampaignConfig = sim.Config
	// ResumeOptions tunes checkpointed campaign generation.
	ResumeOptions = sim.ResumeOptions
	// RunResult reports how a checkpointed generation run ended.
	RunResult = sim.RunResult
	// LoadReport summarises a lenient CSV load.
	LoadReport = dataset.LoadReport
	// RowError is one malformed row quarantined by the lenient loader.
	RowError = dataset.RowError
	// Area describes one measurement area.
	Area = env.Area
	// Class is a throughput level (low / medium / high).
	Class = ml.Class
	// MobilityMode is how the UE is carried (stationary/walking/driving).
	MobilityMode = radio.MobilityMode
	// RadioType is the active RAT (LTE or NR).
	RadioType = radio.RadioType
)

// Mobility modes and radio types.
const (
	ModeStationary = radio.Stationary
	ModeWalking    = radio.Walking
	ModeDriving    = radio.Driving
	RadioLTE       = radio.RadioLTE
	RadioNR        = radio.RadioNR
)

// Feature groups (Table 6).
const (
	GroupL   = features.GroupL
	GroupM   = features.GroupM
	GroupT   = features.GroupT
	GroupC   = features.GroupC
	GroupLM  = features.GroupLM
	GroupTM  = features.GroupTM
	GroupLMC = features.GroupLMC
	GroupTMC = features.GroupTMC
)

// Models.
const (
	ModelKNN     = core.ModelKNN
	ModelRF      = core.ModelRF
	ModelOK      = core.ModelOK
	ModelHM      = core.ModelHM
	ModelGDBT    = core.ModelGDBT
	ModelSeq2Seq = core.ModelSeq2Seq
	ModelLSTM    = core.ModelLSTM
)

// Throughput classes (§5.2: low < 300 Mbps, medium 300–700, high > 700).
const (
	ClassLow    = ml.ClassLow
	ClassMedium = ml.ClassMedium
	ClassHigh   = ml.ClassHigh
)

// DefaultCampaign returns the paper-scale campaign configuration
// (30 passes per trajectory, §3.2).
func DefaultCampaign() CampaignConfig { return sim.DefaultConfig() }

// SmallCampaign returns a scaled-down configuration for quick runs.
func SmallCampaign() CampaignConfig { return sim.SmallConfig() }

// Areas returns the three built-in measurement areas (Table 2).
func Areas() []*Area { return env.AllAreas() }

// AreaByName returns one built-in area: "Airport", "Intersection", "Loop".
func AreaByName(name string) (*Area, error) { return env.AreaByName(name) }

// GenerateCampaign simulates the full measurement campaign across all
// areas and returns the raw (unfiltered) dataset.
func GenerateCampaign(cfg CampaignConfig) *Dataset { return sim.RunCampaign(cfg) }

// GenerateArea simulates the campaign for one area.
func GenerateArea(a *Area, cfg CampaignConfig) *Dataset { return sim.RunArea(a, cfg) }

// GenerateCampaignParallel simulates the campaign over the given areas
// (nil means all) on a pool of workers (<=0 means one per CPU) and
// returns a dataset byte-identical to GenerateCampaign's — shards run
// concurrently but merge in canonical order, each on the same random
// streams the serial runner would hand it.
func GenerateCampaignParallel(cfg CampaignConfig, areas []*Area, workers int) *Dataset {
	return sim.RunCampaignParallel(cfg, areas, workers)
}

// GenerateResumable runs a checkpointed campaign directly into outPath,
// persisting progress to checkpointPath after every shard. A cancelled
// run resumes from its checkpoint and yields a byte-identical file; nil
// areas means the full campaign.
func GenerateResumable(ctx context.Context, cfg CampaignConfig, areas []*Area,
	outPath, checkpointPath string, opt ResumeOptions) (RunResult, error) {
	return sim.RunCampaignResumable(ctx, cfg, areas, outPath, checkpointPath, opt)
}

// CleanDataset applies the paper's §3.1 data-quality rules and returns
// the cleaned dataset plus the number of dropped records.
func CleanDataset(d *Dataset) (*Dataset, int) { return d.QualityFilter() }

// WriteCSV / ReadCSV serialise datasets in the repository's CSV schema.
func WriteCSV(d *Dataset, w io.Writer) error { return d.WriteCSV(w) }
func ReadCSV(r io.Reader) (*Dataset, error)  { return dataset.ReadCSV(r) }

// ReadCSVLenient parses like ReadCSV but quarantines malformed data rows
// (counting them and keeping the first few with line numbers) instead of
// aborting the whole load.
func ReadCSVLenient(r io.Reader) (*Dataset, *LoadReport, error) {
	return dataset.ReadCSVLenient(r)
}
func MergeDatasets(parts ...*Dataset) *Dataset { return dataset.Merge(parts...) }

// ParseFeatureGroup parses "L", "T+M", "L+M+C", ... (order-insensitive).
func ParseFeatureGroup(s string) (FeatureGroup, error) { return features.ParseGroup(s) }

// ParseModel parses a model name: KNN, RF, OK, HM, GDBT, Seq2Seq, LSTM.
func ParseModel(s string) (Model, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "KNN":
		return ModelKNN, nil
	case "RF":
		return ModelRF, nil
	case "OK", "KRIGING":
		return ModelOK, nil
	case "HM":
		return ModelHM, nil
	case "GDBT", "GBDT":
		return ModelGDBT, nil
	case "SEQ2SEQ":
		return ModelSeq2Seq, nil
	case "LSTM":
		return ModelLSTM, nil
	}
	return 0, fmt.Errorf("lumos5g: unknown model %q", s)
}

// Evaluate trains the model on the feature group over d (70/30 split by
// default) and scores it with the paper's metrics (MAE, RMSE, weighted
// average F1, low-class recall).
func Evaluate(d *Dataset, g FeatureGroup, m Model, sc Scale) Result {
	return core.Evaluate(d, g, m, sc)
}

// BuildThroughputMap aggregates d into 2 m × 2 m cells (Fig 6). Cells
// with fewer than minSamples samples are omitted.
func BuildThroughputMap(d *Dataset, minSamples int) *ThroughputMap {
	return core.BuildThroughputMap(d, minSamples)
}

// Transferability trains a T+M model on one panel and tests on another
// (§6.2).
func Transferability(d *Dataset, trainPanelID, testPanelID int, nearMeters float64, sc Scale) (*TransferResult, error) {
	return core.Transferability(d, trainPanelID, testPanelID, nearMeters, sc)
}

// FeatureImportance trains a GDBT on the group and returns Fig 22-style
// logical feature importances.
func FeatureImportance(d *Dataset, g FeatureGroup, sc Scale) (names []string, importance []float64, err error) {
	return core.FeatureImportance(d, g, sc)
}

// ClassOf maps a throughput in Mbps to its class.
func ClassOf(mbps float64) Class { return ml.ClassOf(mbps) }
