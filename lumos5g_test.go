package lumos5g

import (
	"bytes"
	"math"
	"testing"

	"lumos5g/internal/features"
	"lumos5g/internal/ml/gbdt"
	"lumos5g/internal/ml/nn"
)

func tinyCampaign() CampaignConfig {
	return CampaignConfig{Seed: 1, WalkPasses: 2, DrivePasses: 1, StationarySessions: 1, BackgroundUEProb: 0.1}
}

func testScale() Scale {
	return Scale{GBDT: gbdt.Config{Estimators: 40, MaxDepth: 5}, Seed: 1}
}

func TestEndToEndPublicAPI(t *testing.T) {
	a, err := AreaByName("Airport")
	if err != nil {
		t.Fatal(err)
	}
	raw := GenerateArea(a, tinyCampaign())
	clean, dropped := CleanDataset(raw)
	if clean.Len() == 0 || dropped == 0 {
		t.Fatalf("clean=%d dropped=%d", clean.Len(), dropped)
	}

	res := Evaluate(clean, GroupLM, ModelGDBT, testScale())
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.WeightedF1 <= 0.5 {
		t.Fatalf("GDBT L+M F1 = %v, too weak", res.WeightedF1)
	}

	tm := BuildThroughputMap(clean, 2)
	if len(tm.Cells) == 0 {
		t.Fatal("empty throughput map")
	}
}

func TestCSVRoundTripPublic(t *testing.T) {
	a, _ := AreaByName("Airport")
	d := GenerateArea(a, tinyCampaign())
	var buf bytes.Buffer
	if err := WriteCSV(d, &buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != d.Len() {
		t.Fatalf("round trip %d != %d", back.Len(), d.Len())
	}
}

func TestParseHelpers(t *testing.T) {
	g, err := ParseFeatureGroup("t+m+c")
	if err != nil || g != GroupTMC {
		t.Fatal("ParseFeatureGroup")
	}
	m, err := ParseModel("gdbt")
	if err != nil || m != ModelGDBT {
		t.Fatal("ParseModel")
	}
	if _, err := ParseModel("alexnet"); err == nil {
		t.Fatal("unknown model should error")
	}
	for _, name := range []string{"KNN", "RF", "OK", "HM", "Seq2Seq"} {
		if _, err := ParseModel(name); err != nil {
			t.Fatalf("ParseModel(%s): %v", name, err)
		}
	}
}

func TestClassOfPublic(t *testing.T) {
	if ClassOf(100) != ClassLow || ClassOf(500) != ClassMedium || ClassOf(900) != ClassHigh {
		t.Fatal("ClassOf thresholds")
	}
}

func TestAreas(t *testing.T) {
	as := Areas()
	if len(as) != 3 {
		t.Fatalf("areas = %d", len(as))
	}
	if _, err := AreaByName("Nowhere"); err == nil {
		t.Fatal("unknown area should error")
	}
}

func TestCampaignConfigs(t *testing.T) {
	if DefaultCampaign().WalkPasses != 30 {
		t.Fatal("default should match the paper's >=30 passes")
	}
	if SmallCampaign().WalkPasses >= DefaultCampaign().WalkPasses {
		t.Fatal("small campaign should be smaller")
	}
}

func TestTrainPredictor(t *testing.T) {
	a, _ := AreaByName("Airport")
	d, _ := CleanDataset(GenerateArea(a, tinyCampaign()))
	p, err := Train(d, GroupLM, ModelGDBT, testScale())
	if err != nil {
		t.Fatal(err)
	}
	if p.Group() != GroupLM || p.Model() != ModelGDBT {
		t.Fatal("predictor metadata")
	}
	names := p.FeatureNames()
	if len(names) != 5 {
		t.Fatalf("L+M should have 5 features, got %v", names)
	}
	pred, idx := p.PredictDataset(d)
	if len(pred) != len(idx) || len(pred) == 0 {
		t.Fatal("PredictDataset shape")
	}
	// In-sample predictions should correlate strongly with truth.
	var mae float64
	for i := range pred {
		mae += math.Abs(pred[i] - d.Records[idx[i]].ThroughputMbps)
	}
	mae /= float64(len(pred))
	if mae > 300 {
		t.Fatalf("in-sample MAE = %v", mae)
	}
	// Single-vector prediction must be finite and non-negative-ish.
	v := p.Predict(make([]float64, len(names)))
	if math.IsNaN(v) || math.IsInf(v, 0) {
		t.Fatalf("Predict = %v", v)
	}
	if c := p.PredictClass(make([]float64, len(names))); c < ClassLow || c > ClassHigh {
		t.Fatal("PredictClass out of range")
	}
}

func TestTrainRejectsHM(t *testing.T) {
	a, _ := AreaByName("Airport")
	d, _ := CleanDataset(GenerateArea(a, tinyCampaign()))
	if _, err := Train(d, GroupTM, ModelHM, testScale()); err == nil {
		t.Fatal("Train should reject HM")
	}
}

// TestTrainSequenceModels exercises the recurrent side of Train: the
// LSTM and Seq2Seq families train on length-1 sequences of the tabular
// features and serve through the compiled kernel, with PredictBatch
// bit-identical to Predict (the ml.BatchRegressor contract).
func TestTrainSequenceModels(t *testing.T) {
	a, _ := AreaByName("Airport")
	d, _ := CleanDataset(GenerateArea(a, tinyCampaign()))
	sc := testScale()
	sc.Seq2Seq = nn.Seq2SeqConfig{Hidden: 8, Layers: 1, Epochs: 2, Batch: 64}
	for _, m := range []Model{ModelLSTM, ModelSeq2Seq} {
		p, err := Train(d, GroupLM, m, sc)
		if err != nil {
			t.Fatalf("Train(%s): %v", m, err)
		}
		mat := features.Build(d, GroupLM)
		single := make([]float64, len(mat.X))
		for i, x := range mat.X {
			single[i] = p.Predict(x)
			if math.IsNaN(single[i]) || math.IsInf(single[i], 0) {
				t.Fatalf("%s: non-finite prediction for row %d", m, i)
			}
		}
		batch := p.PredictBatch(mat.X)
		for i := range batch {
			if batch[i] != single[i] {
				t.Fatalf("%s: PredictBatch[%d]=%v != Predict=%v", m, i, batch[i], single[i])
			}
		}
	}
}

func TestMergeDatasets(t *testing.T) {
	a, _ := AreaByName("Airport")
	d1 := GenerateArea(a, tinyCampaign())
	d2 := GenerateArea(a, CampaignConfig{Seed: 2, WalkPasses: 1})
	m := MergeDatasets(d1, d2)
	if m.Len() != d1.Len()+d2.Len() {
		t.Fatal("merge len")
	}
}

func TestPredictorSaveLoadRoundTrip(t *testing.T) {
	a, _ := AreaByName("Airport")
	d, _ := CleanDataset(GenerateArea(a, tinyCampaign()))
	p, err := Train(d, GroupLM, ModelGDBT, testScale())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadPredictor(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Group() != GroupLM || back.Model() != ModelGDBT {
		t.Fatal("metadata lost")
	}
	names := p.FeatureNames()
	backNames := back.FeatureNames()
	for i := range names {
		if names[i] != backNames[i] {
			t.Fatal("feature names lost")
		}
	}
	// Identical predictions across the whole dataset.
	pred, _ := p.PredictDataset(d)
	pred2, _ := back.PredictDataset(d)
	for i := range pred {
		if pred[i] != pred2[i] {
			t.Fatal("loaded predictor predicts differently")
		}
	}
}

func TestPredictorSaveRejectsNonGDBT(t *testing.T) {
	a, _ := AreaByName("Airport")
	d, _ := CleanDataset(GenerateArea(a, tinyCampaign()))
	p, err := Train(d, GroupLM, ModelKNN, testScale())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.Save(&buf); err == nil {
		t.Fatal("KNN predictors must not be saveable")
	}
}

func TestLoadPredictorGarbage(t *testing.T) {
	if _, err := LoadPredictor(bytes.NewReader([]byte("junk"))); err == nil {
		t.Fatal("garbage should error")
	}
}
