// Videostreaming demonstrates the paper's motivating use case (§2.2,
// Fig 4) and its §8.2 "5G-aware apps" agenda: adaptive-bitrate selection
// for ultra-HD streaming while walking the Loop. Four controllers
// compete on the same held-out session:
//
//   - the classic throughput rule fed by the in-situ harmonic mean,
//   - a buffer-based (BBA-style) controller,
//   - model-predictive control fed by Lumos5G forecasts along the
//     planned route, with the paper's "content bursting" refinement,
//   - a truth-fed oracle bound.
package main

import (
	"fmt"
	"log"
	"sort"

	"lumos5g"
	"lumos5g/internal/abr"
)

const horizon = 10

func main() {
	area, err := lumos5g.AreaByName("Loop")
	if err != nil {
		log.Fatal(err)
	}
	clean, _ := lumos5g.CleanDataset(lumos5g.GenerateArea(area, lumos5g.SmallCampaign()))

	// Hold out the last walking pass as the live session (the viewer is
	// the paper's pedestrian Bob, Fig 4); train on everything else.
	maxPass := -1
	for _, r := range clean.Records {
		if r.Trajectory == "LOOP" && r.Mode == lumos5g.ModeWalking && r.Pass > maxPass && r.Pass < 100000 {
			maxPass = r.Pass
		}
	}
	if maxPass < 0 {
		log.Fatal("no walking pass found")
	}
	train := clean.Filter(func(r *lumos5g.Record) bool {
		return !(r.Trajectory == "LOOP" && r.Pass == maxPass)
	})
	session := clean.Filter(func(r *lumos5g.Record) bool {
		return r.Trajectory == "LOOP" && r.Pass == maxPass
	})
	sort.Slice(session.Records, func(a, b int) bool {
		return session.Records[a].Second < session.Records[b].Second
	})

	// Lumos5G forecaster over the planned route (§5.2's
	// trajectory-of-features setting; the Loop's panels are unsurveyed,
	// so L+M+C is the strongest available group — the paper's exact
	// situation in this area).
	pred, err := lumos5g.Train(train, lumos5g.GroupLMC, lumos5g.ModelGDBT, lumos5g.Scale{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	lumosPred, idx := pred.PredictDataset(session)
	actual := make([]float64, len(idx))
	for i, ri := range idx {
		actual[i] = session.Records[ri].ThroughputMbps
	}

	at := func(xs []float64, i int) float64 {
		if i >= len(xs) {
			i = len(xs) - 1
		}
		return xs[i]
	}
	lumosFc := func(t int) []float64 {
		out := make([]float64, horizon)
		for i := range out {
			out[i] = at(lumosPred, t+i)
		}
		return out
	}
	hmFc := func(t int) []float64 {
		lo := t - 5
		if lo < 0 {
			lo = 0
		}
		v := actual[0]
		if t > 0 {
			var inv float64
			for _, x := range actual[lo:t] {
				if x < 0.1 {
					x = 0.1
				}
				inv += 1 / x
			}
			v = float64(t-lo) / inv
		}
		out := make([]float64, horizon)
		for i := range out {
			out[i] = v
		}
		return out
	}
	truthFc := func(t int) []float64 {
		out := make([]float64, horizon)
		for i := range out {
			out[i] = at(actual, t+i)
		}
		return out
	}

	fmt.Printf("session: %d s walk around the Loop\n\n", len(actual))
	runs := []struct {
		label string
		ctrl  abr.Controller
		fc    func(int) []float64
	}{
		{"rate rule + harmonic mean", abr.RateBased{}, hmFc},
		{"buffer-based (BBA)", abr.BufferBased{}, hmFc},
		{"MPC + Lumos5G forecasts", abr.Predictive{HorizonSec: horizon}, lumosFc},
		{"MPC + Lumos5G + bursting", abr.Predictive{HorizonSec: horizon, Burst: true}, lumosFc},
		{"oracle (truth-fed MPC)", abr.Oracle{HorizonSec: horizon}, truthFc},
	}
	for _, run := range runs {
		m, err := abr.Simulate(abr.Config{}, run.ctrl, actual, run.fc)
		if err != nil {
			log.Fatalf("%s: %v", run.label, err)
		}
		fmt.Printf("%-28s %s\n", run.label, m)
	}
	fmt.Println("\nContext-aware forecasts let MPC stream near the oracle: the model")
	fmt.Println("anticipates the park dead-zone and handoff patches before the buffer")
	fmt.Println("drains, where the harmonic mean only reacts afterwards (§6.3, §8.2).")
}
