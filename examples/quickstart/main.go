// Quickstart: generate a small measurement campaign for the Airport area,
// clean it, train a Lumos5G GDBT model on the L+M feature group, evaluate
// it against the paper's metrics, and query the trained predictor.
package main

import (
	"fmt"
	"log"

	"lumos5g"
)

func main() {
	// 1. Simulate a small measurement campaign over the Airport corridor
	//    (two head-on mmWave panels ~200 m apart, Table 2).
	area, err := lumos5g.AreaByName("Airport")
	if err != nil {
		log.Fatal(err)
	}
	cfg := lumos5g.SmallCampaign()
	raw := lumos5g.GenerateArea(area, cfg)
	clean, dropped := lumos5g.CleanDataset(raw)
	fmt.Printf("campaign: %d raw samples, %d dropped by the §3.1 quality filter\n",
		raw.Len(), dropped)

	sum := clean.Summary()
	fmt.Printf("walked %.1f km, downloaded %.1f GB, 5G attachment %.0f%%\n",
		sum.WalkedKm, sum.DownloadGB, 100*sum.NRFraction)

	// 2. Evaluate GDBT on Location+Mobility features with a 70/30 split.
	scale := lumos5g.Scale{Seed: 1}
	res := lumos5g.Evaluate(clean, lumos5g.GroupLM, lumos5g.ModelGDBT, scale)
	if res.Err != nil {
		log.Fatal(res.Err)
	}
	fmt.Printf("GDBT %s: MAE %.0f Mbps, RMSE %.0f Mbps, weighted F1 %.2f, recall(low) %.2f\n",
		res.Group, res.MAE, res.RMSE, res.WeightedF1, res.RecallLow)

	// 3. Compare against the location-only view the paper shows is
	//    insufficient (§4.1).
	resL := lumos5g.Evaluate(clean, lumos5g.GroupL, lumos5g.ModelGDBT, scale)
	fmt.Printf("GDBT %s (location only): MAE %.0f Mbps — %.1fx worse\n",
		resL.Group, resL.MAE, resL.MAE/res.MAE)

	// 4. Train a production predictor on all data and query it.
	pred, err := lumos5g.Train(clean, lumos5g.GroupLM, lumos5g.ModelGDBT, scale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("predictor features: %v\n", pred.FeatureNames())
	estimates, idx := pred.PredictDataset(clean)
	r := clean.Records[idx[0]]
	fmt.Printf("sample: at (%.5f, %.5f) heading %.0f° -> predicted %.0f Mbps (%s), observed %.0f Mbps\n",
		r.Latitude, r.Longitude, r.CompassDeg,
		estimates[0], lumos5g.ClassOf(estimates[0]), r.ThroughputMbps)
}
