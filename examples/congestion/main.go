// Congestion reproduces the paper's §A.1.4 experiment (Fig 21) over real
// TCP: four measurement clients share one shaped link (the mmWave panel's
// capacity), with iPerf-style sessions staggered by a "minute" (scaled to
// seconds here). Each client opens 8 parallel TCP connections, as the
// paper's app does. Watch the first client's rate halve when the second
// session starts, then shrink further as the third and fourth join.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"lumos5g/internal/netem"
)

const (
	// linkMbps is the panel capacity at 25 m LoS (the paper's setup spot).
	linkMbps = 1600.0
	// stagePeriod is the scaled "minute" between session starts.
	stagePeriod = 2 * time.Second
	// sampleEvery is the scaled "second".
	sampleEvery = 250 * time.Millisecond
	numUEs      = 4
)

func main() {
	shaper := netem.NewShaper(linkMbps * 1e6)
	srv, err := netem.NewServer(shaper)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	totalSamples := int(stagePeriod/sampleEvery) * (numUEs + 1)
	results := make([][]float64, numUEs)
	var wg sync.WaitGroup
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	start := time.Now()
	for ue := 0; ue < numUEs; ue++ {
		wg.Add(1)
		go func(ue int) {
			defer wg.Done()
			time.Sleep(time.Duration(ue) * stagePeriod)
			samples := totalSamples - ue*int(stagePeriod/sampleEvery)
			c := &netem.Client{Connections: 8, SampleInterval: sampleEvery}
			vals, err := c.Measure(ctx, srv.Addr(), samples)
			if err != nil && len(vals) == 0 {
				log.Printf("UE%d: %v", ue+1, err)
				return
			}
			results[ue] = vals
			log.Printf("UE%d session done (%d samples)", ue+1, len(vals))
		}(ue)
	}
	wg.Wait()
	elapsed := time.Since(start)

	fmt.Printf("\nlink capacity %.0f Mbps, %d UEs, sessions staggered by %v (ran %v)\n\n",
		linkMbps, numUEs, stagePeriod, elapsed.Round(time.Second))
	fmt.Println("UE1's per-stage mean throughput (Fig 21's staircase):")
	perStage := int(stagePeriod / sampleEvery)
	for stage := 0; stage < numUEs; stage++ {
		lo := stage * perStage
		hi := lo + perStage
		if hi > len(results[0]) {
			hi = len(results[0])
		}
		if lo >= hi {
			break
		}
		var sum float64
		for _, v := range results[0][lo:hi] {
			sum += v
		}
		mean := sum / float64(hi-lo)
		fmt.Printf("  stage %d (%d active UE(s)): %7.0f Mbps  (ideal equal share %.0f)\n",
			stage+1, stage+1, mean, linkMbps/float64(stage+1))
	}
	fmt.Println("\nEach joining UE roughly halves, then thirds, then quarters UE1's")
	fmt.Println("rate — the proportional-fair sharing the paper observed at MSP.")
}
