// Throughputmap builds the paper's envisioned artifact (Fig 3c): a
// dynamic 5G throughput map. It simulates a campaign over the Airport
// corridor, aggregates samples into 2 m grid cells, renders the heatmap,
// and contrasts it with the much less informative coverage map (Fig 3b) —
// the paper's argument for *throughput* maps over coverage maps.
package main

import (
	"fmt"
	"log"

	"lumos5g"
)

func main() {
	area, err := lumos5g.AreaByName("Airport")
	if err != nil {
		log.Fatal(err)
	}
	raw := lumos5g.GenerateArea(area, lumos5g.SmallCampaign())
	clean, _ := lumos5g.CleanDataset(raw)

	tm := lumos5g.BuildThroughputMap(clean, 3)
	fmt.Println(tm)
	fmt.Println("legend: '.' <60 Mbps   ':' <300   'o' <700   'O' <1000   '#' >=1000")
	fmt.Print(tm.Render())

	// Coverage says almost everything is "5G"; throughput says otherwise.
	fmt.Printf("\ncoverage map view (Fig 3b): %.0f%% of cells have majority-5G attachment\n",
		100*tm.CoverageFraction())
	highTput := 0
	for _, c := range tm.Cells {
		if c.MeanMbps >= 700 {
			highTput++
		}
	}
	fmt.Printf("throughput map view (Fig 3c): only %.0f%% of cells actually sustain >700 Mbps\n",
		100*float64(highTput)/float64(len(tm.Cells)))
	fmt.Printf("%.0f%% of cells fluctuate with CV >= 50%% (§4.1: 'geolocation alone is insufficient')\n",
		100*tm.CVExceedingFraction(0.5))

	// A map consumer can query any pixel.
	cells := tm.SortedCells()
	mid := cells[len(cells)/2]
	fmt.Printf("\nsample cell %v: mean %.0f Mbps, median %.0f, CV %.0f%%, %d samples\n",
		mid.Key, mid.MeanMbps, mid.MedianMbps, 100*mid.CV, mid.N)
}
