package lumos5g_test

import (
	"fmt"

	"lumos5g"
	"lumos5g/internal/ml/gbdt"
)

// Example_evaluate generates a small Airport campaign and evaluates the
// paper's GDBT model on the Location+Mobility feature group.
func Example_evaluate() {
	area, _ := lumos5g.AreaByName("Airport")
	cfg := lumos5g.CampaignConfig{Seed: 1, WalkPasses: 3, StationarySessions: 1, BackgroundUEProb: 0.1}
	clean, _ := lumos5g.CleanDataset(lumos5g.GenerateArea(area, cfg))

	sc := lumos5g.Scale{GBDT: gbdt.Config{Estimators: 60}, Seed: 1}
	res := lumos5g.Evaluate(clean, lumos5g.GroupLM, lumos5g.ModelGDBT, sc)
	fmt.Println(res.Err == nil && res.WeightedF1 > 0.5 && res.MAE < 400)
	// Output: true
}

// Example_throughputClasses shows the §5.2 class thresholds.
func Example_throughputClasses() {
	fmt.Println(lumos5g.ClassOf(120))
	fmt.Println(lumos5g.ClassOf(450))
	fmt.Println(lumos5g.ClassOf(1500))
	// Output:
	// low
	// medium
	// high
}

// Example_featureGroups parses the Table 6 feature-group names.
func Example_featureGroups() {
	g, _ := lumos5g.ParseFeatureGroup("c+m+t")
	fmt.Println(g)
	// Output: T+M+C
}

// Example_throughputMap builds the Fig 3c artifact from a campaign.
func Example_throughputMap() {
	area, _ := lumos5g.AreaByName("Airport")
	cfg := lumos5g.CampaignConfig{Seed: 1, WalkPasses: 2, BackgroundUEProb: 0.1}
	clean, _ := lumos5g.CleanDataset(lumos5g.GenerateArea(area, cfg))
	tm := lumos5g.BuildThroughputMap(clean, 2)
	fmt.Println(len(tm.Cells) > 50)
	// Output: true
}
