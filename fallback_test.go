package lumos5g

import (
	"math"
	"sync"
	"testing"
)

// trainTestChain trains the default L+M+C → L+M → L chain on a tiny
// cleaned Airport campaign.
func trainTestChain(t *testing.T) (*FallbackChain, *Dataset) {
	t.Helper()
	a, err := AreaByName("Airport")
	if err != nil {
		t.Fatal(err)
	}
	d, _ := CleanDataset(GenerateArea(a, tinyCampaign()))
	c, err := TrainFallbackChain(d, DefaultFallbackGroups, ModelGDBT, testScale())
	if err != nil {
		t.Fatal(err)
	}
	return c, d
}

// fullQuery returns a query satisfying every L+M+C feature column.
func fullQuery(d *Dataset) map[string]float64 {
	r := d.Records[d.Len()/2]
	rad := math.Pi / 180
	return map[string]float64{
		"pixel_x": float64(r.PixelX), "pixel_y": float64(r.PixelY),
		"moving_speed": 4,
		"compass_sin":  math.Sin(30 * rad), "compass_cos": math.Cos(30 * rad),
		"past_tput_last": 600, "past_tput_hmean": 550,
		"radio_type": 1,
		"lte_rsrp":   -90, "lte_rsrq": -10, "lte_rssi": -60,
		"ss_rsrp": -85, "ss_rsrq": -11, "ss_sinr": 12,
		"horizontal_ho": 0, "vertical_ho": 0,
	}
}

func TestFallbackChainTierAttribution(t *testing.T) {
	c, d := trainTestChain(t)
	if len(c.Tiers()) != 3 {
		t.Fatalf("want 3 tiers, got %v", c.TierNames())
	}

	q := fullQuery(d)
	p := c.Predict(q)
	if p.Tier != 0 || p.Degraded || p.Source != "L+M+C" {
		t.Fatalf("full query served by tier %d (%s, degraded=%v)", p.Tier, p.Source, p.Degraded)
	}
	if p.Mbps < 0 || math.IsNaN(p.Mbps) {
		t.Fatalf("bad prediction %v", p.Mbps)
	}

	// Losing a modem field demotes to L+M and reports why.
	delete(q, "ss_rsrp")
	p = c.Predict(q)
	if p.Tier != 1 || !p.Degraded || p.Source != "L+M" {
		t.Fatalf("no-modem query served by tier %d (%s)", p.Tier, p.Source)
	}
	found := false
	for _, m := range p.Missing {
		if m == "ss_rsrp" {
			found = true
		}
	}
	if !found {
		t.Fatalf("Missing should name ss_rsrp, got %v", p.Missing)
	}

	// An out-of-range speed is as bad as a missing one: demote to L.
	q["moving_speed"] = 9999
	p = c.Predict(q)
	if p.Tier != 2 || p.Source != "L" {
		t.Fatalf("no-kinematics query served by tier %d (%s)", p.Tier, p.Source)
	}

	// Without location the last resort serves from throughput history.
	q["pixel_x"] = math.NaN()
	p = c.Predict(q)
	if p.Tier != 3 || p.Source != LastResortGroup {
		t.Fatalf("history query served by tier %d (%s)", p.Tier, p.Source)
	}
	if p.Mbps != 550 {
		t.Fatalf("last resort should use past_tput_hmean=550, got %v", p.Mbps)
	}

	// And with no history at all, from the training prior.
	p = c.Predict(nil)
	if p.Tier != 3 || p.Mbps != c.Prior() {
		t.Fatalf("nil query: tier %d mbps %v prior %v", p.Tier, p.Mbps, c.Prior())
	}
	if !(c.Prior() > 0) {
		t.Fatalf("prior %v", c.Prior())
	}

	counts := c.ServedCounts()
	var total uint64
	for _, n := range counts {
		total += n
	}
	if total != 5 || counts[0] != 1 || counts[3] != 2 {
		t.Fatalf("served counts %v", counts)
	}
}

func TestFallbackChainNeverErrors(t *testing.T) {
	c, d := trainTestChain(t)
	queries := []map[string]float64{
		nil,
		{},
		{"bogus": 1, "pixel_x": math.Inf(1)},
		{"pixel_x": -5, "pixel_y": 1e30},
		{"past_tput_last": math.NaN(), "past_tput_hmean": -1},
		fullQuery(d),
	}
	for i, q := range queries {
		p := c.Predict(q)
		if math.IsNaN(p.Mbps) || math.IsInf(p.Mbps, 0) || p.Mbps < 0 {
			t.Fatalf("query %d: bad Mbps %v", i, p.Mbps)
		}
		if p.Tier < 0 || p.Tier > len(c.Tiers()) {
			t.Fatalf("query %d: bad tier %d", i, p.Tier)
		}
	}
}

func TestFallbackChainConcurrentPredict(t *testing.T) {
	c, d := trainTestChain(t)
	full := fullQuery(d)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				q := full
				if (g+i)%2 == 0 {
					q = nil
				}
				if p := c.Predict(q); math.IsNaN(p.Mbps) {
					t.Error("NaN prediction")
					return
				}
			}
		}(g)
	}
	wg.Wait()
	counts := c.ServedCounts()
	var total uint64
	for _, n := range counts {
		total += n
	}
	if total != 8*200 {
		t.Fatalf("served %d, want %d", total, 8*200)
	}
}

func TestTrainFallbackChainSkipsUnusableGroups(t *testing.T) {
	// Loop has no surveyed panels, so tower groups yield no rows and
	// must be skipped, not fail the chain.
	a, err := AreaByName("Loop")
	if err != nil {
		t.Fatal(err)
	}
	d, _ := CleanDataset(GenerateArea(a, tinyCampaign()))
	c, err := TrainFallbackChain(d, []FeatureGroup{GroupTMC, GroupTM, GroupL}, ModelGDBT, testScale())
	if err != nil {
		t.Fatal(err)
	}
	if got := len(c.Tiers()); got != 1 {
		t.Fatalf("want only the L tier, got %v", c.TierNames())
	}
	if p := c.Predict(nil); p.Tier != 1 || p.Mbps != c.Prior() {
		t.Fatalf("last resort broken: %+v", p)
	}
}

func TestNewFallbackChainValidation(t *testing.T) {
	for _, prior := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := NewFallbackChain(prior); err == nil {
			t.Fatalf("prior %v should be rejected", prior)
		}
	}
	if _, err := NewFallbackChain(100, nil); err == nil {
		t.Fatal("nil tier should be rejected")
	}
	if _, err := ChainFromPredictor(nil, 100); err == nil {
		t.Fatal("nil predictor should be rejected")
	}
	c, err := NewFallbackChain(420)
	if err != nil {
		t.Fatal(err)
	}
	if p := c.Predict(map[string]float64{"x": 1}); p.Mbps != 420 || p.Degraded {
		t.Fatalf("tierless chain: %+v", p)
	}
}
