package lumos5g

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"sync/atomic"

	"lumos5g/internal/features"
	"lumos5g/internal/ml"
	"lumos5g/internal/ml/hm"
)

// FallbackChain is a degraded-mode predictor: an ordered list of trained
// Predictors over progressively smaller feature groups, closed by a
// harmonic-mean / prior last resort that needs no features at all.
//
// The paper's feature groups are composable by design (Table 6) so a
// deployment can mix L/M/T/C per what its sensors provide — but a live
// UE loses sensors at runtime too: the compass jams, the modem stops
// reporting SS-RSRP, the panel survey does not cover the current block.
// The chain turns those losses into tier demotions instead of errors:
// each query is served by the first tier whose feature columns are all
// present, finite, and inside their physical ranges
// (features.ValidRange), and the response records which tier served it.
//
// Predict never fails for a well-formed query (any map, including nil):
// the last resort forecasts from the query's own past-throughput
// features when usable (the ABR harmonic-mean estimator the paper
// benchmarks as HM) and otherwise from the training-set prior.
//
// A FallbackChain is safe for concurrent use by multiple goroutines.
type FallbackChain struct {
	tiers []*Predictor
	prior float64
	// hmOff holds conformal offsets for the harmonic-mean / prior last
	// resort (residuals of truth vs the prior), so even featureless
	// answers carry a calibrated band. nil serves degenerate intervals.
	hmOff *ml.ConformalOffsets
	// served[i] counts queries answered by tier i; the last slot is the
	// harmonic-mean / prior last resort.
	served []atomic.Uint64
}

// LastResortGroup is the Source label of chain predictions served by the
// featureless last resort.
const LastResortGroup = "HM"

// ChainPrediction is one FallbackChain answer with its tier attribution.
type ChainPrediction struct {
	// Mbps is the predicted downlink throughput.
	Mbps float64
	// Class is the §5.2 throughput class of Mbps.
	Class Class
	// Tier is the index of the serving tier; len(chain.Tiers()) means
	// the last resort served.
	Tier int
	// Source names the serving tier's feature group ("L+M+C", "L", ...)
	// or LastResortGroup.
	Source string
	// Degraded reports that at least the first tier was skipped.
	Degraded bool
	// Missing lists the first tier's unusable feature columns when the
	// prediction is degraded (why the preferred model could not run).
	Missing []string
	// P10 and P90 bound the nominal 80% prediction band around Mbps
	// (which is the p50 of the triple). They are filled only by
	// PredictInterval / PredictIntervalBatch and always satisfy
	// P10 <= Mbps <= P90; both are floored at 0 like Mbps itself.
	P10 float64
	P90 float64
	// HasInterval reports that the serving tier carried conformal
	// calibration; when false the band is the degenerate P10 = Mbps =
	// P90 ("no uncertainty estimate"), never an invented one.
	HasInterval bool
}

// DefaultFallbackGroups is the recommended tier order: the full
// Location+Mobility+Connection model, then Location+Mobility once the
// modem stops reporting, then bare Location once even kinematics are
// gone. The chain's built-in last resort covers the empty group.
var DefaultFallbackGroups = []FeatureGroup{GroupLMC, GroupLM, GroupL}

// NewFallbackChain assembles a chain from trained predictors, ordered
// most- to least-demanding. priorMbps is the last-resort forecast used
// when a query carries no usable past-throughput history; it must be a
// positive finite throughput (typically the training set's harmonic
// mean). A chain with zero tiers is legal and serves everything from the
// last resort.
func NewFallbackChain(priorMbps float64, tiers ...*Predictor) (*FallbackChain, error) {
	if math.IsNaN(priorMbps) || math.IsInf(priorMbps, 0) || priorMbps <= 0 {
		return nil, fmt.Errorf("lumos5g: fallback prior must be a positive throughput, got %v", priorMbps)
	}
	for i, p := range tiers {
		if p == nil {
			return nil, fmt.Errorf("lumos5g: fallback tier %d is nil", i)
		}
	}
	c := &FallbackChain{
		tiers: append([]*Predictor(nil), tiers...),
		prior: priorMbps,
	}
	c.served = make([]atomic.Uint64, len(c.tiers)+1)
	return c, nil
}

// TrainFallbackChain trains one predictor per feature group (in the
// given order) on d and closes the chain with the dataset's harmonic-mean
// throughput as the prior. Groups that yield no usable rows on d (e.g. a
// tower group on an unsurveyed area) are skipped rather than failing the
// whole chain — the result records only the tiers that exist.
func TrainFallbackChain(d *Dataset, groups []FeatureGroup, m Model, sc Scale) (*FallbackChain, error) {
	if len(groups) == 0 {
		groups = DefaultFallbackGroups
	}
	var tiers []*Predictor
	for _, g := range groups {
		p, err := Train(d, g, m, sc)
		if err != nil {
			if errors.Is(err, ErrNoUsableRows) {
				continue
			}
			return nil, fmt.Errorf("lumos5g: train fallback tier %s: %w", g, err)
		}
		tiers = append(tiers, p)
	}
	prior, err := hm.New(d.Len()).Predict(d.Throughputs())
	if err != nil || !(prior > 0) {
		return nil, fmt.Errorf("lumos5g: cannot derive fallback prior from dataset: %v", err)
	}
	return NewFallbackChain(prior, tiers...)
}

// TrainCalibratedFallbackChain is TrainFallbackChain with uncertainty:
// every tier is trained via TrainCalibrated (fit on the seeded train
// split, conformal offsets from the holdout), and the last resort gets
// offsets from the spread of the dataset's throughputs around the
// harmonic-mean prior, so PredictInterval serves a calibrated band from
// every tier including HM.
func TrainCalibratedFallbackChain(d *Dataset, groups []FeatureGroup, m Model, sc Scale) (*FallbackChain, error) {
	if len(groups) == 0 {
		groups = DefaultFallbackGroups
	}
	var tiers []*Predictor
	for _, g := range groups {
		p, err := TrainCalibrated(d, g, m, sc)
		if err != nil {
			if errors.Is(err, ErrNoUsableRows) {
				continue
			}
			return nil, fmt.Errorf("lumos5g: train calibrated fallback tier %s: %w", g, err)
		}
		tiers = append(tiers, p)
	}
	prior, err := hm.New(d.Len()).Predict(d.Throughputs())
	if err != nil || !(prior > 0) {
		return nil, fmt.Errorf("lumos5g: cannot derive fallback prior from dataset: %v", err)
	}
	c, err := NewFallbackChain(prior, tiers...)
	if err != nil {
		return nil, err
	}
	if tput := d.Throughputs(); len(tput) >= ml.MinCalibration {
		priors := make([]float64, len(tput))
		for i := range priors {
			priors[i] = prior
		}
		off, err := ml.CalibrateConformal(priors, tput)
		if err == nil {
			c.hmOff = &off
		}
	}
	return c, nil
}

// SetLastResortOffsets attaches conformal offsets to the chain's
// harmonic-mean / prior last resort (the artifact-load path).
func (c *FallbackChain) SetLastResortOffsets(o ml.ConformalOffsets) error {
	if !o.Valid() {
		return fmt.Errorf("lumos5g: non-finite last-resort offsets %+v", o)
	}
	c.hmOff = &o
	return nil
}

// LastResortOffsets returns the last resort's conformal offsets and
// whether any exist.
func (c *FallbackChain) LastResortOffsets() (ml.ConformalOffsets, bool) {
	if c.hmOff == nil {
		return ml.ConformalOffsets{}, false
	}
	return *c.hmOff, true
}

// HarmonicMeanThroughput is the dataset-wide harmonic-mean throughput —
// the same prior TrainFallbackChain bakes into a chain's last resort.
// Returns 0 when the dataset cannot support one (empty, or all-zero).
func HarmonicMeanThroughput(d *Dataset) float64 {
	if d == nil || d.Len() == 0 {
		return 0
	}
	prior, err := hm.New(d.Len()).Predict(d.Throughputs())
	if err != nil || !(prior > 0) {
		return 0
	}
	return prior
}

// ChainFromPredictor wraps a single trained predictor into a one-tier
// chain — the adapter that lets legacy single-model artifacts serve
// through the degraded-mode path.
func ChainFromPredictor(p *Predictor, priorMbps float64) (*FallbackChain, error) {
	if p == nil {
		return nil, fmt.Errorf("lumos5g: nil predictor")
	}
	return NewFallbackChain(priorMbps, p)
}

// Predict serves one query. q maps vectorised feature column names (see
// Predictor.FeatureNames) to raw values; keys may be absent, NaN, or out
// of range — those columns are treated as missing sensors and demote the
// query to the first tier that is fully satisfied. Predict never fails:
// a nil or empty query is served by the last resort.
func (c *FallbackChain) Predict(q map[string]float64) ChainPrediction {
	return c.predict(q, false)
}

// PredictInterval serves one query exactly like Predict — same tier
// walk, same Mbps, same served-counter accounting — and additionally
// fills the P10/P90 band from the serving tier's conformal calibration
// (degenerate when the tier is uncalibrated). The triple always
// satisfies P10 <= Mbps <= P90.
func (c *FallbackChain) PredictInterval(q map[string]float64) ChainPrediction {
	return c.predict(q, true)
}

// fillInterval attaches the serving tier's band to an answer whose Mbps
// is already floored at 0.
func fillInterval(cp *ChainPrediction, off *ml.ConformalOffsets) {
	if off == nil {
		cp.P10, cp.P90 = cp.Mbps, cp.Mbps
		return
	}
	iv := off.Interval(cp.Mbps)
	cp.P10, cp.P90 = iv.P10, iv.P90
	if cp.P10 < 0 {
		cp.P10 = 0
	}
	cp.HasInterval = true
}

func (c *FallbackChain) predict(q map[string]float64, withIval bool) ChainPrediction {
	var firstMissing []string
	for i, p := range c.tiers {
		missing := features.MissingFeatures(q, p.names)
		if i == 0 {
			firstMissing = missing
		}
		if len(missing) > 0 {
			continue
		}
		x := make([]float64, len(p.names))
		for j, n := range p.names {
			x[j] = q[n]
		}
		mbps := p.Predict(x)
		if math.IsNaN(mbps) || math.IsInf(mbps, 0) {
			// A tier that produces garbage is treated like a missing
			// sensor: demote rather than propagate.
			continue
		}
		if mbps < 0 {
			mbps = 0
		}
		c.served[i].Add(1)
		cp := ChainPrediction{
			Mbps:     mbps,
			Class:    ClassOf(mbps),
			Tier:     i,
			Source:   p.group.String(),
			Degraded: i > 0,
			Missing:  missingIfDegraded(firstMissing, i > 0),
		}
		if withIval {
			fillInterval(&cp, p.ival)
		}
		return cp
	}
	// Last resort: the query's own throughput history when usable,
	// otherwise the training prior. Both are the HM estimator's domain.
	mbps := c.prior
	if v, ok := usableFeature(q, "past_tput_hmean"); ok {
		mbps = v
	} else if v, ok := usableFeature(q, "past_tput_last"); ok {
		mbps = v
	}
	c.served[len(c.tiers)].Add(1)
	cp := ChainPrediction{
		Mbps:     mbps,
		Class:    ClassOf(mbps),
		Tier:     len(c.tiers),
		Source:   LastResortGroup,
		Degraded: len(c.tiers) > 0,
		Missing:  missingIfDegraded(firstMissing, len(c.tiers) > 0),
	}
	if withIval {
		fillInterval(&cp, c.hmOff)
	}
	return cp
}

// PredictBatch serves many queries at once, answering exactly as if
// Predict were called on each in order — same tier attribution, same
// served-counter totals — but batching each tier's satisfied queries
// through the model's vectorised fast path. Queries a tier demotes
// (missing sensors, or a non-finite tier prediction) stay pending for
// the next tier, mirroring the per-query demotion loop.
func (c *FallbackChain) PredictBatch(qs []map[string]float64) []ChainPrediction {
	return c.predictBatch(qs, false)
}

// PredictIntervalBatch serves many queries with P10/P90 bands attached.
// Element i equals PredictInterval(qs[i]) exactly — same tier walk,
// same floats, same served-counter totals.
func (c *FallbackChain) PredictIntervalBatch(qs []map[string]float64) []ChainPrediction {
	return c.predictBatch(qs, true)
}

func (c *FallbackChain) predictBatch(qs []map[string]float64, withIval bool) []ChainPrediction {
	out := make([]ChainPrediction, len(qs))
	pending := make([]int, len(qs))
	for i := range pending {
		pending[i] = i
	}
	firstMissing := make([][]string, len(qs))
	for ti, p := range c.tiers {
		if len(pending) == 0 {
			break
		}
		var ready []int
		var X [][]float64
		next := pending[:0]
		for _, qi := range pending {
			missing := features.MissingFeatures(qs[qi], p.names)
			if ti == 0 {
				firstMissing[qi] = missing
			}
			if len(missing) > 0 {
				next = append(next, qi)
				continue
			}
			x := make([]float64, len(p.names))
			for j, n := range p.names {
				x[j] = qs[qi][n]
			}
			ready = append(ready, qi)
			X = append(X, x)
		}
		if len(ready) > 0 {
			preds := ml.PredictAll(p.reg, X)
			for k, qi := range ready {
				mbps := preds[k]
				if math.IsNaN(mbps) || math.IsInf(mbps, 0) {
					next = append(next, qi)
					continue
				}
				if mbps < 0 {
					mbps = 0
				}
				c.served[ti].Add(1)
				out[qi] = ChainPrediction{
					Mbps:     mbps,
					Class:    ClassOf(mbps),
					Tier:     ti,
					Source:   p.group.String(),
					Degraded: ti > 0,
					Missing:  missingIfDegraded(firstMissing[qi], ti > 0),
				}
				if withIval {
					fillInterval(&out[qi], p.ival)
				}
			}
		}
		pending = next
	}
	for _, qi := range pending {
		q := qs[qi]
		mbps := c.prior
		if v, ok := usableFeature(q, "past_tput_hmean"); ok {
			mbps = v
		} else if v, ok := usableFeature(q, "past_tput_last"); ok {
			mbps = v
		}
		c.served[len(c.tiers)].Add(1)
		out[qi] = ChainPrediction{
			Mbps:     mbps,
			Class:    ClassOf(mbps),
			Tier:     len(c.tiers),
			Source:   LastResortGroup,
			Degraded: len(c.tiers) > 0,
			Missing:  missingIfDegraded(firstMissing[qi], len(c.tiers) > 0),
		}
		if withIval {
			fillInterval(&out[qi], c.hmOff)
		}
	}
	return out
}

// usableFeature returns q[name] when it is present and inside the
// feature's valid range.
func usableFeature(q map[string]float64, name string) (float64, bool) {
	v, ok := q[name]
	if !ok {
		return 0, false
	}
	fr, known := features.ValidRange(name)
	if !known || !fr.Contains(v) {
		return 0, false
	}
	return v, true
}

func missingIfDegraded(missing []string, degraded bool) []string {
	if !degraded {
		return nil
	}
	return append([]string(nil), missing...)
}

// Tiers returns the chain's predictors in serving order.
func (c *FallbackChain) Tiers() []*Predictor {
	return append([]*Predictor(nil), c.tiers...)
}

// Prior returns the last-resort throughput prior in Mbps.
func (c *FallbackChain) Prior() float64 { return c.prior }

// ServedCounts returns how many queries each tier has answered since the
// chain was built; the final element counts the last resort.
func (c *FallbackChain) ServedCounts() []uint64 {
	out := make([]uint64, len(c.served))
	for i := range c.served {
		out[i] = c.served[i].Load()
	}
	return out
}

// TierNames returns the serving-order tier labels, ending with the last
// resort — the /healthz wire form of the chain's shape.
func (c *FallbackChain) TierNames() []string {
	out := make([]string, 0, len(c.tiers)+1)
	for _, p := range c.tiers {
		out = append(out, p.group.String())
	}
	return append(out, LastResortGroup)
}

// String renders the chain shape, e.g. "L+M+C → L+M → L → HM".
func (c *FallbackChain) String() string {
	return strings.Join(c.TierNames(), " → ")
}
